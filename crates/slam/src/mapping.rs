//! Scene mapping: densification and Gaussian-parameter optimization
//! (paper Sec. II-A).
//!
//! Mapping fixes the recent camera poses and fine-tunes the Gaussian scene:
//!
//! 1. One **dense forward pass** over the newest keyframe yields the final
//!    transmittance map `Γ_final` (performed "only once per mapping",
//!    paper Sec. IV-A).
//! 2. **Densification** back-projects unseen pixels (`Γ_final > 0.5`,
//!    Eq. 2) into new Gaussians.
//! 3. `S_m` iterations of render → loss → backward → Adam over the window's
//!    keyframes, with pixels chosen by the [`MappingSampler`].
//!
//! The projection cache (`splatonic_render::projcache`) helps only within a
//! single mapping iteration here: the backward pass reuses the forward's
//! projection (same scene revision, same keyframe pose), but every Adam step
//! mutates the scene and bumps its revision, so the next iteration's forward
//! is a plain cache miss (not an invalidation — the scene changed, not the
//! pose) and reprojects. Keyframe poses inside one iteration's window loop
//! differ pairwise, which also shows up as pose-only invalidations.

use crate::adam::{AdamParams, AdamVector};
use crate::algorithm::AlgorithmConfig;
use splatonic_math::{Image, Pose, Vec3};
use splatonic_render::{
    loss, render_backward, render_forward, MappingSampler, Pipeline, PixelSet, RenderConfig,
    RenderTrace,
};
use splatonic_scene::{Camera, Frame, Gaussian, GaussianScene, Intrinsics};
use splatonic_telemetry::Telemetry;

/// Parameters per Gaussian tracked by the mapping optimizer
/// (mean 3 + log-scale 3 + quaternion 4 + opacity 1 + color 3).
const PARAMS_PER_GAUSSIAN: usize = 14;

/// A keyframe: reference frame plus its (estimated, fixed) pose.
#[derive(Debug, Clone)]
pub struct Keyframe {
    /// The reference RGB-D frame.
    pub frame: Frame,
    /// World-to-camera pose estimated by tracking.
    pub pose: Pose,
}

/// Output of one mapping invocation.
#[derive(Debug, Clone)]
pub struct MappingOutput {
    /// Aggregated workload trace (includes the dense Γ pass).
    pub trace: RenderTrace,
    /// Gaussians added by densification.
    pub densified: usize,
    /// Eligible densification candidates rejected by
    /// [`AlgorithmConfig::densify_max_per_frame`].
    pub densified_capped: usize,
    /// Gaussians pruned at the end.
    pub pruned: usize,
    /// Iterations executed.
    pub iters: usize,
    /// Mean pixels rendered per optimization iteration.
    pub pixels_per_iter: f64,
    /// Total pixels rendered across all optimization iterations (the
    /// per-frame `map_sampled_pixels` of the run report).
    pub sampled_pixels: usize,
}

/// Seeds an initial scene by back-projecting every `stride`-th valid-depth
/// pixel of `frame` at `pose`.
pub fn seed_scene_from_frame(
    frame: &Frame,
    intrinsics: Intrinsics,
    pose: Pose,
    stride: usize,
) -> GaussianScene {
    let cam = Camera::new(intrinsics, pose);
    let mut scene = GaussianScene::new();
    let stride = stride.max(1);
    for y in (0..frame.height()).step_by(stride) {
        for x in (0..frame.width()).step_by(stride) {
            let z = frame.depth[(x, y)];
            if z <= 0.0 {
                continue;
            }
            scene.push(backproject_gaussian(frame, &cam, x, y, z, stride));
        }
    }
    scene
}

/// Back-projects pixel `(x, y)` at depth `z` into a new Gaussian whose
/// radius is ~0.65 pixel footprints times `stride` — thin enough to keep
/// the rendered expected depth close to the surface (fat overlapping seeds
/// bias depth toward the camera and shift the tracking optimum).
fn backproject_gaussian(
    frame: &Frame,
    cam: &Camera,
    x: usize,
    y: usize,
    z: f64,
    stride: usize,
) -> Gaussian {
    let mean = cam.unproject_to_world(x as f64 + 0.5, y as f64 + 0.5, z);
    let radius = z * stride as f64 / cam.intrinsics.fx * 0.65;
    Gaussian::new(
        mean,
        Vec3::splat(radius.max(1e-3)),
        splatonic_math::Quat::IDENTITY,
        0.92,
        frame.color[(x, y)],
    )
}

/// Densifies the scene from unseen pixels of `frame` (Eq. 2): back-projects
/// every `stride`-th unseen pixel with valid depth, admitting at most
/// `max_new` Gaussians in deterministic scan order (row-major, strided).
/// Returns `(added, capped)`: how many Gaussians were pushed and how many
/// eligible candidates the cap rejected. With `max_new = usize::MAX` the
/// behavior (and the scene, bitwise) is identical to the uncapped pass.
pub fn densify_unseen(
    scene: &mut GaussianScene,
    frame: &Frame,
    intrinsics: Intrinsics,
    pose: Pose,
    transmittance: &Image<f64>,
    stride: usize,
    max_new: usize,
) -> (usize, usize) {
    let cam = Camera::new(intrinsics, pose);
    let stride = stride.max(1);
    let mut added = 0;
    let mut capped = 0;
    for y in (0..frame.height()).step_by(stride) {
        for x in (0..frame.width()).step_by(stride) {
            if transmittance[(x, y)] <= 0.5 {
                continue;
            }
            let z = frame.depth[(x, y)];
            if z <= 0.0 {
                continue;
            }
            // Keep scanning past the cap so the overflow is counted — the
            // `mapping/densify_capped` counter reports real pressure, not
            // just a saturated flag.
            if added >= max_new {
                capped += 1;
                continue;
            }
            scene.push(backproject_gaussian(frame, &cam, x, y, z, stride));
            added += 1;
        }
    }
    (added, capped)
}

/// The mapping process: densify from the newest keyframe, then optimize the
/// scene over the keyframe window.
#[allow(clippy::too_many_arguments)]
pub fn map_scene(
    scene: &mut GaussianScene,
    keyframes: &[Keyframe],
    intrinsics: Intrinsics,
    sampler: &MappingSampler,
    algo: &AlgorithmConfig,
    pipeline: Pipeline,
    render_cfg: &RenderConfig,
    seed: u64,
) -> MappingOutput {
    map_scene_with_telemetry(
        scene,
        keyframes,
        intrinsics,
        sampler,
        algo,
        pipeline,
        render_cfg,
        seed,
        &Telemetry::disabled(),
    )
}

/// [`map_scene`] with span instrumentation: the once-per-invocation dense Γ
/// pass is timed as `gamma_dense`, each optimization iteration's render
/// passes as `forward` / `backward`, and densify/prune counts are exported
/// as counters. A disabled handle adds no overhead.
#[allow(clippy::too_many_arguments)]
pub fn map_scene_with_telemetry(
    scene: &mut GaussianScene,
    keyframes: &[Keyframe],
    intrinsics: Intrinsics,
    sampler: &MappingSampler,
    algo: &AlgorithmConfig,
    pipeline: Pipeline,
    render_cfg: &RenderConfig,
    seed: u64,
    telemetry: &Telemetry,
) -> MappingOutput {
    let mut adam = AdamVector::new(0);
    map_scene_with_state(
        scene, keyframes, intrinsics, sampler, algo, pipeline, render_cfg, seed, &mut adam,
        telemetry,
    )
}

/// [`map_scene_with_telemetry`] with caller-owned optimizer state.
///
/// `adam` is reset to exactly `AdamVector::new(scene.len() * 14)` at the
/// start of the invocation — numerically identical to the transient vector
/// the convenience wrappers create, but the moments and step count live in
/// the caller between iterations, so a checkpoint taken mid-run genuinely
/// captures them ([`crate::snapshot`]).
#[allow(clippy::too_many_arguments)]
pub fn map_scene_with_state(
    scene: &mut GaussianScene,
    keyframes: &[Keyframe],
    intrinsics: Intrinsics,
    sampler: &MappingSampler,
    algo: &AlgorithmConfig,
    pipeline: Pipeline,
    render_cfg: &RenderConfig,
    seed: u64,
    adam: &mut AdamVector,
    telemetry: &Telemetry,
) -> MappingOutput {
    assert!(!keyframes.is_empty(), "mapping needs at least one keyframe");
    let newest = keyframes.last().expect("non-empty");
    let mut trace = RenderTrace::new();

    // 1. Dense forward pass for Γ_final (once per mapping invocation).
    let dense = PixelSet::dense(intrinsics.width, intrinsics.height);
    let cam_new = Camera::new(intrinsics, newest.pose);
    let dense_out = {
        let _span = telemetry.span("gamma_dense");
        render_forward(scene, &cam_new, &dense, pipeline, render_cfg)
    };
    trace.merge(&dense_out.trace);
    let mut transmittance = Image::filled(intrinsics.width, intrinsics.height, 1.0);
    for (i, p) in dense.iter_all().enumerate() {
        transmittance[(p.x as usize, p.y as usize)] = dense_out.final_transmittance[i];
    }

    // 2. Densification from unseen pixels, bounded per invocation.
    let (densified, densified_capped) = densify_unseen(
        scene,
        &newest.frame,
        intrinsics,
        newest.pose,
        &transmittance,
        2,
        algo.densify_max_per_frame,
    );

    // 3. Optimization over the window.
    adam.reset_to(scene.len() * PARAMS_PER_GAUSSIAN);
    let lr = AdamParams::default();
    let mut pixels_total = 0usize;
    for it in 0..algo.mapping_iters {
        let kf = &keyframes[it % keyframes.len()];
        let cam = Camera::new(intrinsics, kf.pose);
        // Paper Sec. VII-A: "we perform one full-frame mapping for every
        // four frames" — the first iteration of each mapping invocation is
        // dense; the rest use the sparse sampler. The Γ map belongs to the
        // newest keyframe; older keyframes use the weighted sampler only
        // (their unseen regions were handled when they were newest).
        let pixels = if it == 0 {
            PixelSet::dense(intrinsics.width, intrinsics.height)
        } else if std::ptr::eq(kf, newest) {
            sampler.build(&kf.frame, &transmittance, seed ^ (it as u64))
        } else {
            let flat = Image::filled(intrinsics.width, intrinsics.height, 0.0);
            sampler.build(&kf.frame, &flat, seed ^ (it as u64))
        };
        if pixels.is_empty() {
            continue;
        }
        pixels_total += pixels.len();
        let out = {
            let _span = telemetry.span("forward");
            render_forward(scene, &cam, &pixels, pipeline, render_cfg)
        };
        let l = loss::evaluate_loss(&out, &kf.frame, &pixels, &algo.loss);
        let (scene_grads, _, bwd_trace) = {
            let _span = telemetry.span("backward");
            render_backward(scene, &cam, &pixels, &out, &l.grads, pipeline, render_cfg)
        };
        trace.merge(&out.trace);
        trace.merge(&bwd_trace);
        // Adam update over the touched Gaussians.
        adam.grow(scene.len() * PARAMS_PER_GAUSSIAN);
        let mut sparse: Vec<(usize, f64)> =
            Vec::with_capacity(scene_grads.len() * PARAMS_PER_GAUSSIAN);
        for (id, g) in &scene_grads.entries {
            let base = *id as usize * PARAMS_PER_GAUSSIAN;
            sparse.push((base, g.mean.x));
            sparse.push((base + 1, g.mean.y));
            sparse.push((base + 2, g.mean.z));
            sparse.push((base + 3, g.log_scale.x));
            sparse.push((base + 4, g.log_scale.y));
            sparse.push((base + 5, g.log_scale.z));
            sparse.push((base + 6, g.rotation[0]));
            sparse.push((base + 7, g.rotation[1]));
            sparse.push((base + 8, g.rotation[2]));
            sparse.push((base + 9, g.rotation[3]));
            sparse.push((base + 10, g.opacity_logit));
            sparse.push((base + 11, g.color.x));
            sparse.push((base + 12, g.color.y));
            sparse.push((base + 13, g.color.z));
        }
        let fields = scene.fields_mut();
        adam.step(&sparse, &lr, |idx, mut delta| {
            let gid = idx / PARAMS_PER_GAUSSIAN;
            let k = idx % PARAMS_PER_GAUSSIAN;
            // Per-group learning-rate scaling relative to the base Adam lr.
            let scale = match k {
                0..=2 => algo.mean_lr,
                3..=5 => algo.scale_lr,
                6..=9 => algo.rot_lr,
                10 => algo.opacity_lr,
                _ => algo.color_lr,
            } / lr.lr;
            delta *= scale;
            match k {
                0 => fields.means[gid].x += delta,
                1 => fields.means[gid].y += delta,
                2 => fields.means[gid].z += delta,
                3 => fields.log_scales[gid].x += delta,
                4 => fields.log_scales[gid].y += delta,
                5 => fields.log_scales[gid].z += delta,
                6 => fields.rotations[gid].w += delta,
                7 => fields.rotations[gid].x += delta,
                8 => fields.rotations[gid].y += delta,
                9 => fields.rotations[gid].z += delta,
                10 => fields.opacity_logits[gid] += delta,
                11 => fields.colors[gid].x += delta,
                12 => fields.colors[gid].y += delta,
                _ => fields.colors[gid].z += delta,
            }
        });
    }

    // 4. Prune Gaussians that optimization drove transparent or degenerate.
    let before = scene.len();
    scene.retain(|g| g.opacity() > 0.02 && g.is_finite());
    let pruned = before - scene.len();
    telemetry.counter_add("mapping/gaussians_densified", densified as u64);
    telemetry.counter_add("mapping/gaussians_pruned", pruned as u64);
    telemetry.counter_add("mapping/densify_capped", densified_capped as u64);

    MappingOutput {
        trace,
        densified,
        densified_capped,
        pruned,
        iters: algo.mapping_iters,
        pixels_per_iter: pixels_total as f64 / algo.mapping_iters.max(1) as f64,
        sampled_pixels: pixels_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};
    use crate::metrics::psnr_db;
    use splatonic_render::sampling::MappingStrategy;
    use splatonic_render::Pipeline;

    fn tiny_dataset() -> Dataset {
        Dataset::replica_like(
            "map-test",
            13,
            DatasetConfig {
                width: 64,
                height: 48,
                frames: 3,
                spacing: 0.3,
                fov: 1.25,
                furniture: 2,
                depth_dropout_coverage: 0.9,
            },
        )
    }

    fn render_at(
        scene: &GaussianScene,
        intrinsics: Intrinsics,
        pose: Pose,
    ) -> splatonic_math::Image<Vec3> {
        let pixels = PixelSet::dense(intrinsics.width, intrinsics.height);
        let cam = Camera::new(intrinsics, pose);
        let out = render_forward(
            scene,
            &cam,
            &pixels,
            Pipeline::TileBased,
            &RenderConfig::default(),
        );
        let mut img = Image::filled(intrinsics.width, intrinsics.height, Vec3::ZERO);
        for (i, p) in pixels.iter_all().enumerate() {
            img[(p.x as usize, p.y as usize)] = out.color[i];
        }
        img
    }

    #[test]
    fn seed_scene_covers_frame() {
        let d = tiny_dataset();
        let scene = seed_scene_from_frame(&d.frames[0], d.intrinsics, d.gt_poses[0], 2);
        assert!(scene.len() > 200, "seeded {} gaussians", scene.len());
        // Rendering the seeded scene from the seeding pose should already
        // resemble the reference.
        let img = render_at(&scene, d.intrinsics, d.gt_poses[0]);
        let psnr = psnr_db(&img, &d.frames[0].color);
        assert!(psnr > 14.0, "seeded PSNR too low: {psnr:.1} dB");
    }

    #[test]
    fn mapping_improves_psnr() {
        let d = tiny_dataset();
        let mut scene = seed_scene_from_frame(&d.frames[0], d.intrinsics, d.gt_poses[0], 2);
        let before = psnr_db(
            &render_at(&scene, d.intrinsics, d.gt_poses[0]),
            &d.frames[0].color,
        );
        let kf = Keyframe {
            frame: d.frames[0].clone(),
            pose: d.gt_poses[0],
        };
        let algo = AlgorithmConfig {
            mapping_iters: 20,
            ..AlgorithmConfig::default()
        };
        let sampler = MappingSampler::new(2, MappingStrategy::Combined);
        map_scene(
            &mut scene,
            &[kf],
            d.intrinsics,
            &sampler,
            &algo,
            Pipeline::PixelBased,
            &RenderConfig::default(),
            9,
        );
        let after = psnr_db(
            &render_at(&scene, d.intrinsics, d.gt_poses[0]),
            &d.frames[0].color,
        );
        assert!(
            after > before + 0.3,
            "mapping must improve PSNR: {before:.2} -> {after:.2}"
        );
    }

    #[test]
    fn densification_fills_unseen_regions() {
        // A long trajectory so the last frame is a genuinely new viewpoint
        // relative to the seeding frame (unseen regions must appear).
        let d = Dataset::replica_like(
            "map-test-long",
            13,
            DatasetConfig {
                width: 64,
                height: 48,
                frames: 60,
                spacing: 0.3,
                fov: 1.25,
                furniture: 2,
                depth_dropout_coverage: 0.9,
            },
        );
        let mut scene = seed_scene_from_frame(&d.frames[0], d.intrinsics, d.gt_poses[0], 2);
        let n0 = scene.len();
        let kf = Keyframe {
            frame: d.frames[59].clone(),
            pose: d.gt_poses[59],
        };
        let algo = AlgorithmConfig {
            mapping_iters: 2,
            ..AlgorithmConfig::default()
        };
        let sampler = MappingSampler::new(4, MappingStrategy::Combined);
        let out = map_scene(
            &mut scene,
            &[kf],
            d.intrinsics,
            &sampler,
            &algo,
            Pipeline::PixelBased,
            &RenderConfig::default(),
            4,
        );
        assert!(out.densified > 0, "no densification happened");
        assert!(scene.len() > n0 - out.pruned);
    }

    #[test]
    fn densify_cap_is_a_deterministic_prefix() {
        let d = tiny_dataset();
        // Fully unseen transmittance: every strided valid-depth pixel is a
        // densification candidate.
        let t = Image::filled(d.intrinsics.width, d.intrinsics.height, 1.0);
        let mut full = GaussianScene::new();
        let (added_full, capped_full) = densify_unseen(
            &mut full,
            &d.frames[0],
            d.intrinsics,
            d.gt_poses[0],
            &t,
            2,
            usize::MAX,
        );
        assert!(added_full > 10);
        assert_eq!(capped_full, 0, "usize::MAX must never cap");
        let cap = added_full / 2;
        let mut capped = GaussianScene::new();
        let (added, overflow) = densify_unseen(
            &mut capped,
            &d.frames[0],
            d.intrinsics,
            d.gt_poses[0],
            &t,
            2,
            cap,
        );
        assert_eq!(added, cap);
        assert_eq!(overflow, added_full - cap);
        // The capped pass admits exactly the bitwise prefix of the
        // uncapped one — scan order is the deterministic priority.
        for i in 0..cap {
            assert_eq!(capped.gaussian(i), full.gaussian(i), "index {i}");
        }
    }

    #[test]
    fn mapping_reports_capped_densification() {
        let d = Dataset::replica_like(
            "map-test-long",
            13,
            DatasetConfig {
                width: 64,
                height: 48,
                frames: 60,
                spacing: 0.3,
                fov: 1.25,
                furniture: 2,
                depth_dropout_coverage: 0.9,
            },
        );
        let mut scene = seed_scene_from_frame(&d.frames[0], d.intrinsics, d.gt_poses[0], 2);
        let kf = Keyframe {
            frame: d.frames[59].clone(),
            pose: d.gt_poses[59],
        };
        let algo = AlgorithmConfig {
            mapping_iters: 2,
            densify_max_per_frame: 5,
            ..AlgorithmConfig::default()
        };
        let sampler = MappingSampler::new(4, MappingStrategy::Combined);
        let out = map_scene(
            &mut scene,
            &[kf],
            d.intrinsics,
            &sampler,
            &algo,
            Pipeline::PixelBased,
            &RenderConfig::default(),
            4,
        );
        assert_eq!(out.densified, 5, "cap must bound densification");
        assert!(out.densified_capped > 0, "overflow must be reported");
    }

    #[test]
    fn mapping_records_trace() {
        let d = tiny_dataset();
        let mut scene = seed_scene_from_frame(&d.frames[0], d.intrinsics, d.gt_poses[0], 3);
        let kf = Keyframe {
            frame: d.frames[0].clone(),
            pose: d.gt_poses[0],
        };
        let algo = AlgorithmConfig {
            mapping_iters: 3,
            ..AlgorithmConfig::default()
        };
        let sampler = MappingSampler::new(4, MappingStrategy::Combined);
        let out = map_scene(
            &mut scene,
            &[kf],
            d.intrinsics,
            &sampler,
            &algo,
            Pipeline::PixelBased,
            &RenderConfig::default(),
            4,
        );
        assert!(out.trace.forward.pixels_shaded > 0);
        assert!(out.trace.backward.pairs_grad > 0);
        assert_eq!(out.iters, 3);
    }

    #[test]
    #[should_panic(expected = "at least one keyframe")]
    fn empty_keyframes_panic() {
        let d = tiny_dataset();
        let mut scene = GaussianScene::new();
        let sampler = MappingSampler::new(4, MappingStrategy::Combined);
        let _ = map_scene(
            &mut scene,
            &[],
            d.intrinsics,
            &sampler,
            &AlgorithmConfig::default(),
            Pipeline::PixelBased,
            &RenderConfig::default(),
            0,
        );
    }
}
