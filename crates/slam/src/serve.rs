//! Multi-session SLAM serving layer.
//!
//! The ROADMAP north star is serving many users, and SplaTAM-style
//! per-frame track/map loops are embarrassingly parallel *across* sessions
//! — but until PR 8 the repo could only run one [`SlamSystem`] at a time
//! correctly: the projection cache, the render-phase ring buffer, and the
//! pool trace collectors were process-global, so interleaved sessions
//! silently thrashed and cross-attributed each other's state. With those
//! globals session-scoped (keyed LRU projection cache, run-id-tagged trace
//! events, per-frame counter bracketing), this module adds the missing
//! piece: a [`SessionManager`] that owns K independent sessions and drives
//! them over the shared deterministic worker pool.
//!
//! # Model
//!
//! Each session is one SLAM run: frames arrive through [`ingest`] into a
//! bounded per-session queue (the tail of the session's growing dataset;
//! past [`ServeConfig::queue_capacity`] pending frames the call reports
//! [`ServeError::Backpressure`] and the producer must retry). [`step`]
//! schedules fairly — round-robin over the sessions with pending frames —
//! and processes exactly one frame on the calling thread; the worker pool
//! fans out *inside* the frame, so parallel hardware is shared by time-
//! slicing sessions at frame granularity, exactly how the paper's
//! accelerator shares its units across stages. Each step runs inside a
//! [`splatonic_math::timebase::run_scope`] carrying the session id, so
//! every trace event the frame produces attributes to its session.
//!
//! Idle sessions are evicted to disk via the PR 5 snapshot format — either
//! explicitly ([`evict`]) or automatically when more than
//! [`ServeConfig::max_resident`] sessions are resident — and resume
//! transparently on their next scheduled frame. Eviction/resume is inside
//! the bitwise contract: a session that ping-pongs to disk produces output
//! bit-identical to one that never left memory (`tests/serve.rs`).
//!
//! Per-session accounting stays meaningful under concurrency because every
//! session owns its own [`Telemetry`] handle: `render/cache_*` counters,
//! `pool/worker*` spans, and per-frame records accumulate only what that
//! session's own frames did (see `system.rs` frame bracketing).
//!
//! [`ingest`]: SessionManager::ingest
//! [`step`]: SessionManager::step
//! [`evict`]: SessionManager::evict

use crate::snapshot::{Snapshot, SnapshotError};
use crate::system::{SlamConfig, SlamResult, SlamSystem};
use crate::Dataset;
use splatonic_math::{timebase, Pose, Vec3};
use splatonic_scene::{Frame, GaussianScene, Intrinsics, SyntheticWorld, WorldStyle};
use splatonic_telemetry::{AccuracySummary, RunReport, SpanEvent, Telemetry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum frames a session may have pending (ingested, not yet
    /// stepped) before [`SessionManager::ingest`] reports
    /// [`ServeError::Backpressure`]. Must be at least 1.
    pub queue_capacity: usize,
    /// Maximum sessions kept resident in memory; past it the least-recently
    /// stepped session is evicted to disk after each step. `0` disables
    /// automatic eviction (explicit [`SessionManager::evict`] still works
    /// when `evict_dir` is set).
    pub max_resident: usize,
    /// Directory for eviction snapshots. Required when `max_resident > 0`
    /// or [`SessionManager::evict`] is used.
    pub evict_dir: Option<PathBuf>,
    /// Give each session an enabled [`Telemetry`] handle (per-frame
    /// records, spans, counters — needed for per-session latency
    /// reporting). Telemetry never changes results (bitwise contract).
    pub telemetry: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 4,
            max_resident: 0,
            evict_dir: None,
            telemetry: true,
        }
    }
}

/// Serving-layer errors.
#[derive(Debug)]
pub enum ServeError {
    /// No session with this id exists (never created, or already finished).
    UnknownSession(u32),
    /// The session's pending queue is full; retry after stepping.
    Backpressure {
        /// Session id.
        session: u32,
        /// Frames currently pending.
        pending: usize,
    },
    /// The session was closed; no further frames may be ingested.
    Closed(u32),
    /// [`SessionManager::finish`] requires [`SessionManager::close`] first.
    NotClosed(u32),
    /// [`SessionManager::finish`] requires every pending frame stepped.
    NotDrained {
        /// Session id.
        session: u32,
        /// Frames still pending.
        pending: usize,
    },
    /// The session never processed a frame; there is nothing to finalize.
    Empty(u32),
    /// Eviction requested but [`ServeConfig::evict_dir`] is unset.
    NoEvictDir,
    /// Snapshot encode/decode/IO failure during eviction or resume.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::Backpressure { session, pending } => {
                write!(f, "session {session} queue full ({pending} pending)")
            }
            ServeError::Closed(id) => write!(f, "session {id} is closed to new frames"),
            ServeError::NotClosed(id) => write!(f, "session {id} must be closed before finish"),
            ServeError::NotDrained { session, pending } => {
                write!(f, "session {session} still has {pending} pending frames")
            }
            ServeError::Empty(id) => write!(f, "session {id} processed no frames"),
            ServeError::NoEvictDir => write!(f, "eviction requires ServeConfig::evict_dir"),
            ServeError::Snapshot(e) => write!(f, "session snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

/// One processed frame, as reported by [`SessionManager::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// The session that was stepped.
    pub session: u32,
    /// The dataset frame index that was processed.
    pub frame: usize,
}

/// Everything a finished session hands back.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Session id.
    pub id: u32,
    /// Session name (as given to [`SessionManager::create_session`]).
    pub name: String,
    /// The SLAM result — bit-identical to a sequential
    /// [`SlamSystem::run`] over the same frames.
    pub result: SlamResult,
    /// The session's own telemetry report (per-frame records, latency
    /// histograms, `render/cache_*` counters, `pool/worker*` spans).
    pub report: RunReport,
    /// The session's hierarchical span events (run-id tagged), for merged
    /// fleet trace export.
    pub span_events: Vec<SpanEvent>,
    /// Times this session was evicted to disk.
    pub evictions: u64,
    /// Times this session was resumed from disk.
    pub resumes: u64,
}

/// Where a session's [`SlamSystem`] currently lives.
#[derive(Debug)]
enum Residency {
    /// In memory, ready to step.
    Resident(Box<SlamSystem>),
    /// Snapshotted to this file; resumed transparently on the next step.
    Evicted(PathBuf),
}

/// One managed SLAM session.
#[derive(Debug)]
struct Session {
    id: u32,
    name: String,
    config: SlamConfig,
    intrinsics: Intrinsics,
    /// The session's sequence so far: ingested frames + reference poses.
    /// Frames `0..processed` are done; the tail is the pending queue.
    dataset: Dataset,
    /// Frames processed so far (== the system's `next_frame`).
    processed: usize,
    /// Closed sessions accept no further frames.
    closed: bool,
    residency: Residency,
    telemetry: Telemetry,
    /// Global step counter value of this session's most recent step
    /// (recency for the eviction policy).
    last_step: u64,
    evictions: u64,
    resumes: u64,
}

impl Session {
    fn pending(&self) -> usize {
        self.dataset.len() - self.processed
    }
}

/// Session ids are process-unique (not per-manager): they double as trace
/// run ids, and two managers in one process (tests run in parallel) must
/// not cross-attribute events in the shared trace buffers.
static NEXT_SESSION_ID: AtomicU32 = AtomicU32::new(1);

/// Owns K independent SLAM sessions and schedules their frames fairly over
/// the shared worker pool. See the module docs for the serving model.
#[derive(Debug)]
pub struct SessionManager {
    config: ServeConfig,
    sessions: Vec<Session>,
    /// Round-robin scan start for the next [`SessionManager::step`].
    rr_cursor: usize,
    /// Monotonic step counter (recency clock for eviction).
    step_counter: u64,
    frames_total: u64,
    evictions: u64,
    resumes: u64,
}

impl SessionManager {
    /// Creates an empty manager.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity == 0`, or if `max_resident > 0` without an
    /// `evict_dir` (automatic eviction would have nowhere to write).
    pub fn new(config: ServeConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue_capacity must be >= 1");
        assert!(
            config.max_resident == 0 || config.evict_dir.is_some(),
            "max_resident > 0 requires ServeConfig::evict_dir"
        );
        SessionManager {
            config,
            sessions: Vec::new(),
            rr_cursor: 0,
            step_counter: 0,
            frames_total: 0,
            evictions: 0,
            resumes: 0,
        }
    }

    /// Creates a session and returns its id (process-unique; also the
    /// session's trace run id).
    pub fn create_session(
        &mut self,
        name: &str,
        config: SlamConfig,
        intrinsics: Intrinsics,
    ) -> u32 {
        let id = NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed);
        let telemetry = if self.config.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        // The SLAM loop reads only frames/gt_poses/intrinsics; the world is
        // a placeholder (a served session has no ground-truth world).
        let dataset = Dataset {
            name: name.to_string(),
            frames: Vec::new(),
            gt_poses: Vec::new(),
            intrinsics,
            world: SyntheticWorld {
                scene: GaussianScene::new(),
                extent: Vec3::ZERO,
                style: WorldStyle::ReplicaLike,
                seed: 0,
            },
        };
        self.sessions.push(Session {
            id,
            name: name.to_string(),
            config,
            intrinsics,
            dataset,
            processed: 0,
            closed: false,
            residency: Residency::Resident(Box::new(SlamSystem::new(config, intrinsics))),
            telemetry,
            last_step: 0,
            evictions: 0,
            resumes: 0,
        });
        id
    }

    fn index_of(&self, id: u32) -> Result<usize, ServeError> {
        self.sessions
            .iter()
            .position(|s| s.id == id)
            .ok_or(ServeError::UnknownSession(id))
    }

    /// Enqueues one frame (with its reference pose) for the session.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] when the session already has
    /// `queue_capacity` pending frames (retry after [`Self::step`]);
    /// [`ServeError::Closed`] after [`Self::close`];
    /// [`ServeError::UnknownSession`] otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the frame's dimensions disagree with the session's
    /// intrinsics.
    pub fn ingest(
        &mut self,
        id: u32,
        frame: Frame,
        reference_pose: Pose,
    ) -> Result<(), ServeError> {
        let idx = self.index_of(id)?;
        let session = &mut self.sessions[idx];
        if session.closed {
            return Err(ServeError::Closed(id));
        }
        let pending = session.pending();
        if pending >= self.config.queue_capacity {
            return Err(ServeError::Backpressure {
                session: id,
                pending,
            });
        }
        assert_eq!(
            (frame.width(), frame.height()),
            (session.intrinsics.width, session.intrinsics.height),
            "ingested frame dimensions disagree with session intrinsics"
        );
        session.dataset.frames.push(frame);
        session.dataset.gt_poses.push(reference_pose);
        Ok(())
    }

    /// Frames ingested but not yet stepped for the session.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if no such session exists.
    pub fn pending(&self, id: u32) -> Result<usize, ServeError> {
        Ok(self.sessions[self.index_of(id)?].pending())
    }

    /// Closes the session to further [`Self::ingest`] calls. Pending frames
    /// still step; call [`Self::finish`] once drained.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if no such session exists.
    pub fn close(&mut self, id: u32) -> Result<(), ServeError> {
        let idx = self.index_of(id)?;
        self.sessions[idx].closed = true;
        Ok(())
    }

    /// Whether the session is currently resident in memory (as opposed to
    /// evicted to disk).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if no such session exists.
    pub fn is_resident(&self, id: u32) -> Result<bool, ServeError> {
        let idx = self.index_of(id)?;
        Ok(matches!(
            self.sessions[idx].residency,
            Residency::Resident(_)
        ))
    }

    /// Processes one frame of the next ready session (round-robin over
    /// sessions with pending frames), resuming it from disk first if it was
    /// evicted. Returns `None` when no session has pending frames.
    ///
    /// After the step, enforces [`ServeConfig::max_resident`] by evicting
    /// least-recently-stepped sessions (never the one just stepped).
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] if an eviction or resume fails.
    pub fn step(&mut self) -> Result<Option<StepReport>, ServeError> {
        let n = self.sessions.len();
        let Some(idx) = (0..n)
            .map(|off| (self.rr_cursor + off) % n.max(1))
            .find(|&i| n > 0 && self.sessions[i].pending() > 0)
        else {
            return Ok(None);
        };
        self.rr_cursor = (idx + 1) % n;
        self.make_resident(idx)?;

        let session = &mut self.sessions[idx];
        let Residency::Resident(system) = &mut session.residency else {
            unreachable!("make_resident leaves the session resident");
        };
        let frame = {
            // Everything this frame records — phase events, pool events,
            // telemetry spans — attributes to this session's run id.
            let _scope = timebase::run_scope(session.id);
            system
                .step_frame(&session.dataset, &session.telemetry)
                .expect("pending > 0 implies an unprocessed frame")
        };
        session.processed += 1;
        self.step_counter += 1;
        self.frames_total += 1;
        session.last_step = self.step_counter;
        let report = StepReport {
            session: session.id,
            frame,
        };
        self.enforce_residency(idx)?;
        Ok(Some(report))
    }

    /// Steps until every session's queue is empty; returns the number of
    /// frames processed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Self::step`] error.
    pub fn run_until_blocked(&mut self) -> Result<usize, ServeError> {
        let mut steps = 0;
        while self.step()?.is_some() {
            steps += 1;
        }
        Ok(steps)
    }

    /// Snapshots the session to disk and drops its in-memory state. A
    /// no-op if it is already evicted. The session resumes transparently on
    /// its next step.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoEvictDir`] without a configured directory;
    /// [`ServeError::Snapshot`] on write failure;
    /// [`ServeError::UnknownSession`] if no such session exists.
    pub fn evict(&mut self, id: u32) -> Result<(), ServeError> {
        let idx = self.index_of(id)?;
        self.evict_idx(idx)
    }

    fn evict_idx(&mut self, idx: usize) -> Result<(), ServeError> {
        let dir = self
            .config
            .evict_dir
            .as_ref()
            .ok_or(ServeError::NoEvictDir)?
            .clone();
        let session = &mut self.sessions[idx];
        if matches!(session.residency, Residency::Evicted(_)) {
            return Ok(());
        }
        std::fs::create_dir_all(&dir).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let path = dir.join(format!("session_{}.snap", session.id));
        let Residency::Resident(system) = &mut session.residency else {
            unreachable!("checked resident above");
        };
        // Snapshots exclude execution telemetry, so flush the session's
        // accumulated cache/pool counters into its own handle before the
        // in-memory state is dropped — finalize then exports only what
        // accumulated after the last resume, and the totals stay whole.
        system.flush_counters(&session.telemetry);
        system.checkpoint().write_file(&path)?;
        session.residency = Residency::Evicted(path);
        session.evictions += 1;
        self.evictions += 1;
        session.telemetry.counter_add("serve/evictions", 1);
        Ok(())
    }

    /// Resumes the session from its snapshot if it was evicted.
    fn make_resident(&mut self, idx: usize) -> Result<(), ServeError> {
        let session = &mut self.sessions[idx];
        let Residency::Evicted(path) = &session.residency else {
            return Ok(());
        };
        let snapshot = Snapshot::read_file(path)?;
        let system = SlamSystem::resume(
            session.config,
            session.intrinsics,
            &session.dataset,
            &snapshot,
        )?;
        session.residency = Residency::Resident(Box::new(system));
        session.resumes += 1;
        self.resumes += 1;
        session.telemetry.counter_add("serve/resumes", 1);
        Ok(())
    }

    /// Evicts least-recently-stepped resident sessions (never index
    /// `keep`) until at most `max_resident` remain resident.
    fn enforce_residency(&mut self, keep: usize) -> Result<(), ServeError> {
        let max = self.config.max_resident;
        if max == 0 {
            return Ok(());
        }
        loop {
            let resident = self
                .sessions
                .iter()
                .filter(|s| matches!(s.residency, Residency::Resident(_)))
                .count();
            if resident <= max {
                return Ok(());
            }
            let Some(victim) = self
                .sessions
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != keep && matches!(s.residency, Residency::Resident(_)))
                .min_by_key(|(_, s)| s.last_step)
                .map(|(i, _)| i)
            else {
                return Ok(());
            };
            self.evict_idx(victim)?;
        }
    }

    /// Finalizes a closed, fully drained session: evaluates the trajectory,
    /// snapshots its telemetry into a [`RunReport`], and removes it from
    /// the manager.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotClosed`] before [`Self::close`];
    /// [`ServeError::NotDrained`] with frames still pending;
    /// [`ServeError::Empty`] if it never processed a frame;
    /// [`ServeError::Snapshot`] if resuming an evicted session fails;
    /// [`ServeError::UnknownSession`] if no such session exists.
    pub fn finish(&mut self, id: u32) -> Result<SessionOutcome, ServeError> {
        let idx = self.index_of(id)?;
        {
            let s = &self.sessions[idx];
            if !s.closed {
                return Err(ServeError::NotClosed(id));
            }
            if s.pending() > 0 {
                return Err(ServeError::NotDrained {
                    session: id,
                    pending: s.pending(),
                });
            }
            if s.processed == 0 {
                return Err(ServeError::Empty(id));
            }
        }
        self.make_resident(idx)?;
        let session = self.sessions.remove(idx);
        let Residency::Resident(mut system) = session.residency else {
            unreachable!("make_resident leaves the session resident");
        };
        let result = {
            let _scope = timebase::run_scope(session.id);
            system.finalize(&session.dataset, &session.telemetry)
        };
        let report = session.telemetry.finish(
            &session.name,
            AccuracySummary {
                ate_cm: result.ate_cm,
                psnr_db: result.psnr_db,
                frames: result.frames,
                scene_size: result.scene_size,
            },
        );
        let span_events = session.telemetry.span_events();
        Ok(SessionOutcome {
            id: session.id,
            name: session.name,
            result,
            report,
            span_events,
            evictions: session.evictions,
            resumes: session.resumes,
        })
    }

    /// Ids of all live (not yet finished) sessions, in creation order.
    pub fn session_ids(&self) -> Vec<u32> {
        self.sessions.iter().map(|s| s.id).collect()
    }

    /// Total frames processed across all sessions since creation.
    pub fn frames_processed(&self) -> u64 {
        self.frames_total
    }

    /// Total evictions performed (automatic + explicit).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total resumes performed.
    pub fn resumes(&self) -> u64 {
        self.resumes
    }
}
