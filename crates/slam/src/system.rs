//! The end-to-end SLAM loop (paper Fig. 1 / Fig. 2).
//!
//! [`SlamSystem::run`] processes an RGB-D sequence: tracking runs on every
//! frame; mapping is invoked every `mapping_every` frames over a keyframe
//! window (mapping `M_t` depends on tracking `T_t`, Fig. 2). The first pose
//! anchors the trajectory (standard SLAM convention) and the scene is seeded
//! from the first frame's depth.

use crate::algorithm::AlgorithmConfig;
use crate::mapping::{map_scene_with_telemetry, seed_scene_from_frame, Keyframe};
use crate::metrics::{ate_rmse_cm, psnr_db};
use crate::tracking::{constant_velocity_init, track_frame_with_telemetry};
use crate::Dataset;
use splatonic_math::{Image, Pose, Vec3};
use splatonic_render::projcache;
use splatonic_render::sampling::MappingStrategy;
use splatonic_render::{
    render_forward, MappingSampler, Pipeline, PixelSet, RenderConfig, RenderTrace, SamplingStrategy,
};
use splatonic_scene::{Camera, Frame, GaussianScene, Intrinsics};
use splatonic_telemetry::{FrameRecord, Telemetry};
use std::time::Instant;

/// System-level configuration: which pipeline, which samplers, which
/// algorithm preset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlamConfig {
    /// Algorithm preset configuration.
    pub algorithm: AlgorithmConfig,
    /// Rendering schedule for both processes.
    pub pipeline: Pipeline,
    /// Tracking-time pixel sampling.
    pub tracking_sampling: SamplingStrategy,
    /// Mapping sampler tile edge `w_m`.
    pub mapping_tile: usize,
    /// Mapping sampler strategy variant.
    pub mapping_strategy: MappingStrategy,
    /// Renderer numeric configuration.
    pub render: RenderConfig,
    /// Master seed.
    pub seed: u64,
    /// Seeding stride for the initial back-projection.
    pub seed_stride: usize,
}

impl Default for SlamConfig {
    fn default() -> Self {
        SlamConfig {
            algorithm: AlgorithmConfig::default(),
            pipeline: Pipeline::PixelBased,
            tracking_sampling: SamplingStrategy::RandomPerTile { tile: 16 },
            mapping_tile: 4,
            mapping_strategy: MappingStrategy::Combined,
            render: RenderConfig::default(),
            seed: 0,
            seed_stride: 1,
        }
    }
}

impl SlamConfig {
    /// The dense baseline: original pipeline, no sparse sampling.
    pub fn dense_baseline(algorithm: AlgorithmConfig) -> Self {
        SlamConfig {
            algorithm,
            pipeline: Pipeline::TileBased,
            tracking_sampling: SamplingStrategy::Dense,
            mapping_strategy: MappingStrategy::RandomOnly,
            mapping_tile: 1,
            ..SlamConfig::default()
        }
    }

    /// The paper's SPLATONIC configuration (sparse sampling + pixel-based
    /// rendering, `w_t = 16`, `w_m = 4`).
    pub fn splatonic(algorithm: AlgorithmConfig) -> Self {
        SlamConfig {
            algorithm,
            ..SlamConfig::default()
        }
    }

    /// "Org.+S": sparse sampling on the unmodified tile-based pipeline.
    pub fn original_plus_sampling(algorithm: AlgorithmConfig) -> Self {
        SlamConfig {
            algorithm,
            pipeline: Pipeline::TileBased,
            ..SlamConfig::default()
        }
    }
}

/// Result of a SLAM run.
#[derive(Debug, Clone)]
pub struct SlamResult {
    /// Estimated world-to-camera poses, one per frame.
    pub est_poses: Vec<Pose>,
    /// Absolute trajectory error versus ground truth (cm).
    pub ate_cm: f64,
    /// Mean PSNR of final-map renders at keyframe poses (dB).
    pub psnr_db: f64,
    /// Aggregated tracking workload trace.
    pub tracking_trace: RenderTrace,
    /// Aggregated mapping workload trace.
    pub mapping_trace: RenderTrace,
    /// Total tracking iterations executed.
    pub tracking_iters: usize,
    /// Total mapping iterations executed.
    pub mapping_iters: usize,
    /// Number of frames processed.
    pub frames: usize,
    /// Number of mapping invocations.
    pub mapping_invocations: usize,
    /// Final scene size (Gaussians).
    pub scene_size: usize,
}

/// The SLAM system state.
#[derive(Debug, Clone)]
pub struct SlamSystem {
    config: SlamConfig,
    intrinsics: Intrinsics,
    scene: GaussianScene,
}

impl SlamSystem {
    /// Creates a system for the given camera.
    pub fn new(config: SlamConfig, intrinsics: Intrinsics) -> Self {
        SlamSystem {
            config,
            intrinsics,
            scene: GaussianScene::new(),
        }
    }

    /// The current reconstructed scene.
    pub fn scene(&self) -> &GaussianScene {
        &self.scene
    }

    /// The configuration.
    pub fn config(&self) -> &SlamConfig {
        &self.config
    }

    /// Runs SLAM over the whole dataset and evaluates against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn run(&mut self, dataset: &Dataset) -> SlamResult {
        self.run_with_telemetry(dataset, &Telemetry::disabled())
    }

    /// [`Self::run`] with full instrumentation: `tracking` / `mapping` spans
    /// (render passes nest under them as `forward` / `backward`), one
    /// [`FrameRecord`] per frame including running PSNR and ATE, and the
    /// aggregated workload traces exported as counters.
    ///
    /// Per-frame PSNR/ATE evaluation renders the current map densely, which
    /// real SLAM would not do each frame — it only happens when `telemetry`
    /// is enabled, so the uninstrumented path is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn run_with_telemetry(&mut self, dataset: &Dataset, telemetry: &Telemetry) -> SlamResult {
        assert!(!dataset.is_empty(), "dataset must contain frames");
        // Bracket the run so the render pool's per-worker busy time lands
        // in the report as pool/worker<i> spans.
        let pool_stats_before = if telemetry.is_enabled() {
            splatonic_math::pool::worker_stats_snapshot()
        } else {
            Vec::new()
        };
        // Projection-cache statistics are thread-local side-band state (not
        // part of the render trace — see `projcache`); bracket the run and
        // each frame with snapshots to report deltas.
        let cache_run_start = projcache::stats();
        let cfg = self.config;
        let algo = cfg.algorithm;
        let n = dataset.len();
        let mut est_poses: Vec<Pose> = Vec::with_capacity(n);
        let mut tracking_trace = RenderTrace::new();
        let mut mapping_trace = RenderTrace::new();
        let mut tracking_iters = 0;
        let mut mapping_iters = 0;
        let mut mapping_invocations = 0;

        // Anchor: the first pose is given (standard convention) and the
        // scene is seeded from the first frame.
        est_poses.push(dataset.gt_poses[0]);
        self.scene = seed_scene_from_frame(
            &dataset.frames[0],
            self.intrinsics,
            dataset.gt_poses[0],
            cfg.seed_stride,
        );
        let mut keyframes = vec![Keyframe {
            frame: dataset.frames[0].clone(),
            pose: dataset.gt_poses[0],
        }];
        let sampler = MappingSampler::new(cfg.mapping_tile, cfg.mapping_strategy);

        // Initial mapping refines the seeded scene.
        let cache_frame_start = projcache::stats();
        let map0_start = Instant::now();
        let m0 = {
            let _span = telemetry.span("mapping");
            map_scene_with_telemetry(
                &mut self.scene,
                &keyframes,
                self.intrinsics,
                &sampler,
                &algo,
                cfg.pipeline,
                &cfg.render,
                cfg.seed,
                telemetry,
            )
        };
        mapping_trace.merge(&m0.trace);
        mapping_iters += m0.iters;
        mapping_invocations += 1;
        if telemetry.is_enabled() {
            let cache_frame = projcache::stats().since(&cache_frame_start);
            telemetry.record_frame(FrameRecord {
                frame_idx: 0,
                track_iters: 0,
                map_invoked: true,
                sampled_pixels: 0, // tracking never runs on the anchor frame
                map_sampled_pixels: m0.sampled_pixels,
                gaussian_count: self.scene.len(),
                cache_hits: cache_frame.hits,
                cache_invalidations: cache_frame.invalidations,
                psnr_db: self.frame_psnr(&dataset.frames[0], est_poses[0]),
                ate_so_far_cm: 0.0, // the anchor pose is given
                track_ms: 0.0,
                map_ms: map0_start.elapsed().as_secs_f64() * 1e3,
            });
        }

        for t in 1..n {
            let prev = est_poses[t - 1];
            let prev_prev = if t >= 2 { Some(est_poses[t - 2]) } else { None };
            let init = constant_velocity_init(prev, prev_prev);
            let cache_frame_start = projcache::stats();
            let track_start = Instant::now();
            let out = {
                let _span = telemetry.span("tracking");
                track_frame_with_telemetry(
                    &self.scene,
                    self.intrinsics,
                    init,
                    &dataset.frames[t],
                    cfg.tracking_sampling,
                    cfg.pipeline,
                    &algo,
                    &cfg.render,
                    cfg.seed ^ (t as u64).wrapping_mul(0xA5A5_5A5A),
                    telemetry,
                )
            };
            let track_ms = track_start.elapsed().as_secs_f64() * 1e3;
            tracking_trace.merge(&out.trace);
            tracking_iters += out.iters;
            est_poses.push(out.pose);

            let mut map_invoked = false;
            let mut map_ms = 0.0;
            let mut map_sampled_pixels = 0usize;
            if t % algo.mapping_every == 0 {
                keyframes.push(Keyframe {
                    frame: dataset.frames[t].clone(),
                    pose: out.pose,
                });
                if keyframes.len() > algo.keyframe_window {
                    let cut = keyframes.len() - algo.keyframe_window;
                    keyframes.drain(..cut);
                }
                let map_start = Instant::now();
                let m = {
                    let _span = telemetry.span("mapping");
                    map_scene_with_telemetry(
                        &mut self.scene,
                        &keyframes,
                        self.intrinsics,
                        &sampler,
                        &algo,
                        cfg.pipeline,
                        &cfg.render,
                        cfg.seed ^ (t as u64).wrapping_mul(0x5A5A_A5A5) ^ 0xF0F0,
                        telemetry,
                    )
                };
                map_ms = map_start.elapsed().as_secs_f64() * 1e3;
                map_invoked = true;
                map_sampled_pixels = m.sampled_pixels;
                mapping_trace.merge(&m.trace);
                mapping_iters += m.iters;
                mapping_invocations += 1;
            }

            if telemetry.is_enabled() {
                let cache_frame = projcache::stats().since(&cache_frame_start);
                telemetry.record_frame(FrameRecord {
                    frame_idx: t,
                    track_iters: out.iters,
                    map_invoked,
                    sampled_pixels: (out.pixels_per_iter * out.iters as f64).round() as usize,
                    map_sampled_pixels,
                    gaussian_count: self.scene.len(),
                    cache_hits: cache_frame.hits,
                    cache_invalidations: cache_frame.invalidations,
                    psnr_db: self.frame_psnr(&dataset.frames[t], out.pose),
                    ate_so_far_cm: ate_rmse_cm(&est_poses, &dataset.gt_poses[..=t]),
                    track_ms,
                    map_ms,
                });
            }
        }

        let ate_cm = ate_rmse_cm(&est_poses, &dataset.gt_poses[..n]);
        let psnr = self.evaluate_psnr(dataset, &est_poses, algo.mapping_every);

        telemetry.record_trace("tracking", &tracking_trace);
        telemetry.record_trace("mapping", &mapping_trace);
        let cache_run = projcache::stats().since(&cache_run_start);
        telemetry.counter_add("render/cache_hits", cache_run.hits);
        telemetry.counter_add("render/cache_misses", cache_run.misses);
        telemetry.counter_add("render/cache_invalidations", cache_run.invalidations);
        telemetry.counter_add("slam/tracking_iters", tracking_iters as u64);
        telemetry.counter_add("slam/mapping_iters", mapping_iters as u64);
        telemetry.counter_add("slam/mapping_invocations", mapping_invocations as u64);
        telemetry.gauge_set("slam/scene_size", self.scene.len() as f64);
        telemetry.record_pool_workers(&pool_stats_before);

        SlamResult {
            est_poses,
            ate_cm,
            psnr_db: psnr,
            tracking_trace,
            mapping_trace,
            tracking_iters,
            mapping_iters,
            frames: n,
            mapping_invocations,
            scene_size: self.scene.len(),
        }
    }

    /// PSNR of the current map rendered densely at `pose` versus `frame`.
    fn frame_psnr(&self, frame: &Frame, pose: Pose) -> f64 {
        let pixels = PixelSet::dense(self.intrinsics.width, self.intrinsics.height);
        let cam = Camera::new(self.intrinsics, pose);
        let out = render_forward(
            &self.scene,
            &cam,
            &pixels,
            Pipeline::TileBased,
            &self.config.render,
        );
        let mut img = Image::filled(self.intrinsics.width, self.intrinsics.height, Vec3::ZERO);
        for (i, p) in pixels.iter_all().enumerate() {
            img[(p.x as usize, p.y as usize)] = out.color[i];
        }
        psnr_db(&img, &frame.color)
    }

    /// Mean PSNR of final-map renders at every `stride`-th frame pose.
    fn evaluate_psnr(&self, dataset: &Dataset, est_poses: &[Pose], stride: usize) -> f64 {
        let mut total = 0.0;
        let mut count = 0;
        for t in (0..dataset.len()).step_by(stride.max(1)) {
            let v = self.frame_psnr(&dataset.frames[t], est_poses[t]);
            if v.is_finite() {
                total += v;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn tiny() -> Dataset {
        Dataset::replica_like(
            "sys-test",
            21,
            DatasetConfig {
                width: 64,
                height: 48,
                frames: 9,
                spacing: 0.3,
                fov: 1.25,
                furniture: 2,
            },
        )
    }

    #[test]
    fn slam_runs_end_to_end_sparse() {
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let r = sys.run(&d);
        assert_eq!(r.est_poses.len(), 9);
        assert_eq!(r.frames, 9);
        assert!(r.ate_cm.is_finite());
        assert!(
            r.ate_cm < 10.0,
            "sparse SLAM should track within 10 cm on an easy sequence: {} cm",
            r.ate_cm
        );
        assert!(r.psnr_db > 12.0, "PSNR {}", r.psnr_db);
        assert!(r.scene_size > 100);
        assert!(r.tracking_iters > 0 && r.mapping_iters > 0);
        assert!(r.mapping_invocations >= 2);
    }

    #[test]
    fn traces_separate_tracking_and_mapping() {
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let r = sys.run(&d);
        assert!(r.tracking_trace.forward.pixels_shaded > 0);
        assert!(r.mapping_trace.forward.pixels_shaded > 0);
        // Mapping renders dense Γ passes, so its per-invocation pixel count
        // is much larger; tracking runs on far sparser sets.
        let track_px = r.tracking_trace.forward.pixels_shaded as f64 / r.tracking_iters as f64;
        let map_px = r.mapping_trace.forward.pixels_shaded as f64 / r.mapping_iters as f64;
        assert!(map_px > track_px);
    }

    #[test]
    fn telemetry_records_spans_frames_and_counters() {
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let telemetry = Telemetry::enabled();
        let r = sys.run_with_telemetry(&d, &telemetry);
        let report = telemetry.finish(
            "sys-test",
            splatonic_telemetry::AccuracySummary {
                ate_cm: r.ate_cm,
                psnr_db: r.psnr_db,
                frames: r.frames,
                scene_size: r.scene_size,
            },
        );
        // One record per frame, running metrics populated.
        assert_eq!(report.frames.len(), r.frames);
        assert!(report.frames[1..].iter().all(|f| f.track_iters > 0));
        assert!(report.frames.iter().any(|f| f.map_invoked));
        // Every mapping invocation renders pixels, and that count must reach
        // the frame record (anchor frame included).
        for f in &report.frames {
            if f.map_invoked {
                assert!(
                    f.map_sampled_pixels > 0,
                    "frame {} mapped but reports zero sampled pixels",
                    f.frame_idx
                );
            } else {
                assert_eq!(f.map_sampled_pixels, 0, "frame {}", f.frame_idx);
            }
        }
        assert!(report.frames.last().unwrap().psnr_db.is_finite());
        assert!(report.frames.last().unwrap().ate_so_far_cm.is_finite());
        // Nested spans: render passes under tracking and mapping.
        let span = |p: &str| report.spans.iter().find(|(n, _)| n == p);
        for path in [
            "tracking",
            "tracking/forward",
            "tracking/backward",
            "mapping",
            "mapping/gamma_dense",
            "mapping/forward",
            "mapping/backward",
        ] {
            assert!(span(path).is_some(), "missing span {path}");
        }
        assert_eq!(span("tracking").unwrap().1.count(), r.frames - 1);
        assert_eq!(span("mapping").unwrap().1.count(), r.mapping_invocations);
        // Workload counters match the aggregated traces.
        let counter = |n: &str| {
            report
                .counters
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(
            counter("tracking/forward/pixels_shaded"),
            r.tracking_trace.forward.pixels_shaded
        );
        assert_eq!(
            counter("mapping/backward/atomic_adds"),
            r.mapping_trace.backward.atomic_adds
        );
        assert!(counter("mapping/gaussians_densified") > 0);
    }

    #[test]
    fn telemetry_does_not_change_results() {
        let d = tiny();
        let mut a = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let ra = a.run(&d);
        let mut b = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let rb = b.run_with_telemetry(&d, &Telemetry::enabled());
        assert_eq!(ra.est_poses, rb.est_poses);
        assert_eq!(ra.ate_cm, rb.ate_cm);
        assert_eq!(ra.tracking_trace, rb.tracking_trace);
    }

    #[test]
    fn slam_results_identical_across_thread_counts() {
        // End-to-end determinism: the whole SLAM loop — sampling, tracking,
        // mapping, densify/prune — must be bit-identical for every worker
        // count (the pool's golden contract, satellite of PR 3).
        let d = tiny();
        let run = |threads: usize| {
            let mut cfg = SlamConfig::default();
            cfg.render.threads = threads;
            SlamSystem::new(cfg, d.intrinsics).run(&d)
        };
        let r1 = run(1);
        for threads in [2, 8] {
            let r = run(threads);
            assert_eq!(r1.est_poses, r.est_poses, "{threads} workers");
            assert_eq!(r1.ate_cm.to_bits(), r.ate_cm.to_bits(), "{threads} workers");
            assert_eq!(
                r1.psnr_db.to_bits(),
                r.psnr_db.to_bits(),
                "{threads} workers"
            );
            assert_eq!(r1.tracking_trace, r.tracking_trace, "{threads} workers");
            assert_eq!(r1.mapping_trace, r.mapping_trace, "{threads} workers");
            assert_eq!(r1.scene_size, r.scene_size, "{threads} workers");
        }
    }

    #[test]
    fn config_presets_differ() {
        let algo = AlgorithmConfig::default();
        let a = SlamConfig::dense_baseline(algo);
        let b = SlamConfig::splatonic(algo);
        let c = SlamConfig::original_plus_sampling(algo);
        assert_eq!(a.tracking_sampling, SamplingStrategy::Dense);
        assert_eq!(b.pipeline, Pipeline::PixelBased);
        assert_eq!(c.pipeline, Pipeline::TileBased);
        assert!(matches!(
            c.tracking_sampling,
            SamplingStrategy::RandomPerTile { tile: 16 }
        ));
    }

    #[test]
    #[should_panic(expected = "must contain frames")]
    fn empty_dataset_panics() {
        let d = tiny();
        let empty = Dataset {
            name: "empty".into(),
            frames: Vec::new(),
            gt_poses: Vec::new(),
            intrinsics: d.intrinsics,
            world: d.world.clone(),
        };
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let _ = sys.run(&empty);
    }
}
