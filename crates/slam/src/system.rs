//! The end-to-end SLAM loop (paper Fig. 1 / Fig. 2).
//!
//! [`SlamSystem::run`] processes an RGB-D sequence: tracking runs on every
//! frame; mapping is invoked every `mapping_every` frames over a keyframe
//! window (mapping `M_t` depends on tracking `T_t`, Fig. 2). The first pose
//! anchors the trajectory (standard SLAM convention) and the scene is seeded
//! from the first frame's depth.
//!
//! The loop is structured as an incremental state machine —
//! [`SlamSystem::step_frame`] processes one frame, [`SlamSystem::finalize`]
//! evaluates the finished trajectory — so a run can be checkpointed after
//! any frame ([`SlamSystem::checkpoint`]) and continued in another process
//! ([`SlamSystem::resume`]) with bitwise-identical results (DESIGN.md §12).

use crate::adam::AdamVector;
use crate::algorithm::AlgorithmConfig;
use crate::mapping::{map_scene_with_state, seed_scene_from_frame, Keyframe};
use crate::metrics::ate_rmse_cm;
use crate::snapshot::{fnv1a, Snapshot, SnapshotError};
use crate::tracking::{constant_velocity_init, track_frame_with_telemetry};
use crate::Dataset;
use splatonic_math::pool::WorkerStats;
use splatonic_math::Pose;
use splatonic_render::projcache;
use splatonic_render::sampling::MappingStrategy;
use splatonic_render::tilesort;
use splatonic_render::{MappingSampler, Pipeline, RenderConfig, RenderTrace, SamplingStrategy};
use splatonic_scene::{Frame, GaussianScene, Intrinsics};
use splatonic_telemetry::{FrameRecord, Telemetry};
use std::time::Instant;

/// Receives each checkpoint as it is cut: the decoded [`Snapshot`] plus its
/// already-encoded wire bytes (so a file sink never re-encodes). Returning
/// an error aborts the run with that error.
pub type CheckpointSink<'a> = dyn FnMut(&Snapshot, &[u8]) -> Result<(), SnapshotError> + 'a;

/// System-level configuration: which pipeline, which samplers, which
/// algorithm preset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlamConfig {
    /// Algorithm preset configuration.
    pub algorithm: AlgorithmConfig,
    /// Rendering schedule for both processes.
    pub pipeline: Pipeline,
    /// Tracking-time pixel sampling.
    pub tracking_sampling: SamplingStrategy,
    /// Mapping sampler tile edge `w_m`.
    pub mapping_tile: usize,
    /// Mapping sampler strategy variant.
    pub mapping_strategy: MappingStrategy,
    /// Renderer numeric configuration.
    pub render: RenderConfig,
    /// Master seed.
    pub seed: u64,
    /// Seeding stride for the initial back-projection.
    pub seed_stride: usize,
    /// Cut a checkpoint after every this many frames in
    /// [`SlamSystem::run_with_checkpoints`] (`0` disables checkpointing).
    /// Frame 0 (the anchor + initial mapping) always falls on the cadence.
    pub checkpoint_every: usize,
    /// Post-mapping LOD budget: when nonzero, [`SlamSystem::finalize`]
    /// decimates the scene to at most this many Gaussians
    /// ([`splatonic_scene::lod::decimate`]) *after* the accuracy
    /// evaluation — the reported PSNR measures the full map; the decimated
    /// scene is what callers export or keep serving. `0` (default)
    /// disables the pass. Runs strictly after the last frame, so it is
    /// not result-affecting for tracking/mapping and stays outside the
    /// config fingerprint.
    pub lod_budget: usize,
}

impl Default for SlamConfig {
    fn default() -> Self {
        SlamConfig {
            algorithm: AlgorithmConfig::default(),
            pipeline: Pipeline::PixelBased,
            tracking_sampling: SamplingStrategy::RandomPerTile { tile: 16 },
            mapping_tile: 4,
            mapping_strategy: MappingStrategy::Combined,
            render: RenderConfig::default(),
            seed: 0,
            seed_stride: 1,
            checkpoint_every: 0,
            lod_budget: 0,
        }
    }
}

impl SlamConfig {
    /// The dense baseline: original pipeline, no sparse sampling.
    pub fn dense_baseline(algorithm: AlgorithmConfig) -> Self {
        SlamConfig {
            algorithm,
            pipeline: Pipeline::TileBased,
            tracking_sampling: SamplingStrategy::Dense,
            mapping_strategy: MappingStrategy::RandomOnly,
            mapping_tile: 1,
            ..SlamConfig::default()
        }
    }

    /// The paper's SPLATONIC configuration (sparse sampling + pixel-based
    /// rendering, `w_t = 16`, `w_m = 4`).
    pub fn splatonic(algorithm: AlgorithmConfig) -> Self {
        SlamConfig {
            algorithm,
            ..SlamConfig::default()
        }
    }

    /// "Org.+S": sparse sampling on the unmodified tile-based pipeline.
    pub fn original_plus_sampling(algorithm: AlgorithmConfig) -> Self {
        SlamConfig {
            algorithm,
            pipeline: Pipeline::TileBased,
            ..SlamConfig::default()
        }
    }

    /// Fingerprint of the *result-affecting* configuration, stored in every
    /// [`Snapshot`] so resuming under a different algorithm or sampling
    /// setup is rejected as stale ([`SnapshotError::ConfigMismatch`]).
    ///
    /// Execution knobs that are bitwise-transparent by contract are
    /// deliberately excluded — `render.threads`, `render.binning`,
    /// `render.cache`, `render.bin_size`, `render.kernels` (scalar and SIMD
    /// kernels are bit-identical, DESIGN.md §13), `checkpoint_every`
    /// itself, and `lod_budget` (a post-run pass that never shapes
    /// per-frame results) — so a snapshot taken at one thread width or
    /// kernel mode resumes at any other.
    pub fn fingerprint(&self) -> u64 {
        let mut buf: Vec<u8> = Vec::with_capacity(256);
        let u = |buf: &mut Vec<u8>, v: u64| buf.extend_from_slice(&v.to_le_bytes());
        let f = |buf: &mut Vec<u8>, v: f64| buf.extend_from_slice(&v.to_bits().to_le_bytes());
        let a = &self.algorithm;
        buf.extend_from_slice(format!("{:?}", a.preset).as_bytes());
        u(&mut buf, a.tracking_iters as u64);
        u(&mut buf, a.mapping_iters as u64);
        u(&mut buf, a.mapping_every as u64);
        u(&mut buf, a.keyframe_window as u64);
        u(&mut buf, a.densify_max_per_frame as u64);
        for lr in [
            a.pose_lr,
            a.mean_lr,
            a.scale_lr,
            a.rot_lr,
            a.opacity_lr,
            a.color_lr,
        ] {
            f(&mut buf, lr);
        }
        for w in [
            a.loss.color_weight,
            a.loss.depth_weight,
            a.loss.huber_delta,
            a.loss.huber_delta_depth,
        ] {
            f(&mut buf, w);
        }
        buf.extend_from_slice(format!("{:?}", self.pipeline).as_bytes());
        buf.extend_from_slice(format!("{:?}", self.tracking_sampling).as_bytes());
        u(&mut buf, self.mapping_tile as u64);
        buf.extend_from_slice(format!("{:?}", self.mapping_strategy).as_bytes());
        let r = &self.render;
        for v in [
            r.alpha_threshold,
            r.alpha_max,
            r.transmittance_min,
            r.screen_blur,
            r.bbox_sigma,
            r.near,
            r.background.x,
            r.background.y,
            r.background.z,
        ] {
            f(&mut buf, v);
        }
        u(&mut buf, self.seed);
        u(&mut buf, self.seed_stride as u64);
        fnv1a(&buf)
    }
}

/// Result of a SLAM run.
#[derive(Debug, Clone)]
pub struct SlamResult {
    /// Estimated world-to-camera poses, one per frame.
    pub est_poses: Vec<Pose>,
    /// Absolute trajectory error versus ground truth (cm).
    pub ate_cm: f64,
    /// Mean PSNR of final-map renders at every `mapping_every`-th estimated
    /// frame pose (dB). Evaluation strides over the whole trajectory —
    /// every `mapping_every`-th frame, whether or not it entered the
    /// keyframe window.
    pub psnr_db: f64,
    /// Aggregated tracking workload trace.
    pub tracking_trace: RenderTrace,
    /// Aggregated mapping workload trace.
    pub mapping_trace: RenderTrace,
    /// Total tracking iterations executed.
    pub tracking_iters: usize,
    /// Total mapping iterations executed.
    pub mapping_iters: usize,
    /// Number of frames processed.
    pub frames: usize,
    /// Number of mapping invocations.
    pub mapping_invocations: usize,
    /// Final scene size (Gaussians), after the optional
    /// [`SlamConfig::lod_budget`] decimation pass.
    pub scene_size: usize,
}

/// In-flight run state: everything that must survive a checkpoint/resume
/// cycle, plus per-process telemetry bracketing that deliberately does not
/// (pool/cache baselines restart at resume — they are side-band stats,
/// outside the bitwise contract).
#[derive(Debug, Clone)]
struct RunState {
    /// Index of the first unprocessed frame.
    next_frame: usize,
    /// Estimated poses for frames `0..next_frame`.
    est_poses: Vec<Pose>,
    /// The keyframe window (owned frames, for mapping).
    keyframes: Vec<Keyframe>,
    /// Dataset frame index of each keyframe (for serialization — snapshots
    /// store indices, not images).
    keyframe_indices: Vec<usize>,
    /// Mapping optimizer state (moments + step count).
    map_adam: AdamVector,
    /// Aggregated tracking trace so far.
    tracking_trace: RenderTrace,
    /// Aggregated mapping trace so far.
    mapping_trace: RenderTrace,
    tracking_iters: usize,
    mapping_iters: usize,
    mapping_invocations: usize,
    /// Per-worker pool activity attributed to *this* run so far (telemetry
    /// only). The pool registry is process-global, so a run-start/run-end
    /// subtraction would absorb every other session's activity when runs
    /// interleave; instead each frame brackets its own window and the
    /// deltas accumulate here.
    pool_accum: Vec<WorkerStats>,
    /// Projection-cache activity attributed to this run, accumulated the
    /// same bracket-by-bracket way (telemetry side-band only).
    cache_accum: projcache::CacheStats,
    /// Sorted-tile-list cache activity attributed to this run (hits,
    /// merges, cold/merged element counts), accumulated like `cache_accum`.
    sort_accum: tilesort::SortStats,
}

/// Adds the per-worker activity since `before` (a
/// [`splatonic_math::pool::worker_stats_snapshot`]) into `accum`,
/// merging by worker slot.
fn accumulate_pool(accum: &mut Vec<WorkerStats>, before: &[WorkerStats]) {
    let after = splatonic_math::pool::worker_stats_snapshot();
    for w in &after {
        let prev = before.iter().find(|b| b.worker == w.worker);
        let delta_ms = w.busy_ms - prev.map_or(0.0, |b| b.busy_ms);
        let delta_chunks = w.chunks.saturating_sub(prev.map_or(0, |b| b.chunks));
        if delta_ms <= 0.0 && delta_chunks == 0 {
            continue;
        }
        if let Some(slot) = accum.iter_mut().find(|a| a.worker == w.worker) {
            slot.busy_ms += delta_ms;
            slot.chunks += delta_chunks;
        } else {
            accum.push(WorkerStats {
                worker: w.worker,
                busy_ms: delta_ms,
                chunks: delta_chunks,
            });
        }
    }
}

/// The SLAM system state.
#[derive(Debug, Clone)]
pub struct SlamSystem {
    config: SlamConfig,
    intrinsics: Intrinsics,
    scene: GaussianScene,
    run: Option<RunState>,
}

impl SlamSystem {
    /// Creates a system for the given camera.
    pub fn new(config: SlamConfig, intrinsics: Intrinsics) -> Self {
        SlamSystem {
            config,
            intrinsics,
            scene: GaussianScene::new(),
            run: None,
        }
    }

    /// The current reconstructed scene.
    pub fn scene(&self) -> &GaussianScene {
        &self.scene
    }

    /// The configuration.
    pub fn config(&self) -> &SlamConfig {
        &self.config
    }

    /// Runs SLAM over the whole dataset and evaluates against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn run(&mut self, dataset: &Dataset) -> SlamResult {
        self.run_with_telemetry(dataset, &Telemetry::disabled())
    }

    /// [`Self::run`] with full instrumentation: `tracking` / `mapping` spans
    /// (render passes nest under them as `forward` / `backward`), one
    /// [`FrameRecord`] per frame including running PSNR and ATE, and the
    /// aggregated workload traces exported as counters.
    ///
    /// Per-frame PSNR/ATE evaluation renders the current map densely, which
    /// real SLAM would not do each frame — it only happens when `telemetry`
    /// is enabled, so the uninstrumented path is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn run_with_telemetry(&mut self, dataset: &Dataset, telemetry: &Telemetry) -> SlamResult {
        self.run_with_checkpoints(dataset, telemetry, &mut |_, _| Ok(()))
            .expect("the no-op checkpoint sink cannot fail")
    }

    /// [`Self::run_with_telemetry`] that additionally cuts a checkpoint
    /// through `sink` after every `checkpoint_every`-th frame (see
    /// [`SlamConfig::checkpoint_every`]; a zero cadence never calls the
    /// sink). Each cut records a `checkpoint` span, bumps the
    /// `slam/checkpoints_written` counter, and sets `slam/snapshot_bytes`.
    ///
    /// Continues a resumed run ([`Self::resume`]) from its first
    /// unprocessed frame instead of starting over.
    ///
    /// # Errors
    ///
    /// Propagates the first error the sink returns.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn run_with_checkpoints(
        &mut self,
        dataset: &Dataset,
        telemetry: &Telemetry,
        sink: &mut CheckpointSink,
    ) -> Result<SlamResult, SnapshotError> {
        assert!(!dataset.is_empty(), "dataset must contain frames");
        let every = self.config.checkpoint_every;
        while let Some(t) = self.step_frame(dataset, telemetry) {
            if every > 0 && t.is_multiple_of(every) {
                self.emit_checkpoint(telemetry, sink)?;
            }
        }
        Ok(self.finalize(dataset, telemetry))
    }

    /// Processes the next unprocessed frame and returns its index, or
    /// `None` when every frame has been processed (call
    /// [`Self::finalize`]). The first call of a fresh run processes the
    /// anchor frame: pose given, scene seeded from depth, initial mapping.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn step_frame(&mut self, dataset: &Dataset, telemetry: &Telemetry) -> Option<usize> {
        assert!(!dataset.is_empty(), "dataset must contain frames");
        if self.run.is_none() {
            self.init_run(dataset, telemetry);
            return Some(0);
        }
        let t = self.run.as_ref().expect("active run").next_frame;
        if t >= dataset.len() {
            return None;
        }
        self.process_frame(dataset, t, telemetry);
        Some(t)
    }

    /// Evaluates the finished trajectory (ATE, PSNR), exports the
    /// aggregated traces and run counters to telemetry, and clears the run
    /// state so the next [`Self::run`] starts fresh.
    ///
    /// # Panics
    ///
    /// Panics if no run is active (no [`Self::step_frame`] call, or
    /// finalize called twice).
    pub fn finalize(&mut self, dataset: &Dataset, telemetry: &Telemetry) -> SlamResult {
        let _finalize = telemetry.span_flat("finalize");
        let mut state = self.run.take().expect("finalize requires an active run");
        let n = state.next_frame;
        assert_eq!(n, dataset.len(), "finalize requires a completed run");
        let ate_cm = ate_rmse_cm(&state.est_poses, &dataset.gt_poses[..n]);
        let psnr = {
            let _span = telemetry.span_flat("psnr_eval");
            // The evaluation renders go through the same pool and cache;
            // bracket them so they attribute to this run too.
            let pool_before = if telemetry.is_enabled() {
                splatonic_math::pool::worker_stats_snapshot()
            } else {
                Vec::new()
            };
            let cache_before = projcache::stats();
            let sort_before = tilesort::stats();
            let v = self.evaluate_psnr(
                dataset,
                &state.est_poses,
                self.config.algorithm.mapping_every,
            );
            state
                .cache_accum
                .add(&projcache::stats().since(&cache_before));
            state.sort_accum.add(&tilesort::stats().since(&sort_before));
            if telemetry.is_enabled() {
                accumulate_pool(&mut state.pool_accum, &pool_before);
            }
            v
        };

        telemetry.record_trace("tracking", &state.tracking_trace);
        telemetry.record_trace("mapping", &state.mapping_trace);
        let cache_run = state.cache_accum;
        telemetry.counter_add("render/cache_hits", cache_run.hits);
        telemetry.counter_add("render/cache_misses", cache_run.misses);
        telemetry.counter_add("render/cache_invalidations", cache_run.invalidations);
        let sort_run = state.sort_accum;
        telemetry.counter_add("render/sort_hits", sort_run.hits);
        telemetry.counter_add("render/sort_misses", sort_run.misses);
        telemetry.counter_add("render/sort_merges", sort_run.merges);
        telemetry.counter_add("render/sort_cold_elems", sort_run.cold_elems);
        telemetry.counter_add("render/sort_merged_elems", sort_run.merged_elems);
        telemetry.counter_add("slam/tracking_iters", state.tracking_iters as u64);
        telemetry.counter_add("slam/mapping_iters", state.mapping_iters as u64);
        telemetry.counter_add("slam/mapping_invocations", state.mapping_invocations as u64);

        // Optional post-mapping LOD pass (after the PSNR evaluation, so the
        // reported accuracy measures the full map). The counter is emitted
        // even when the pass is off — `lod/pruned == 0` distinguishes
        // "nothing pruned" from "telemetry missing" in the report gates.
        let lod = if self.config.lod_budget > 0 {
            let _span = telemetry.span_flat("lod_decimate");
            splatonic_scene::lod::decimate(&mut self.scene, self.config.lod_budget)
        } else {
            splatonic_scene::LodStats {
                kept: self.scene.len(),
                pruned: 0,
            }
        };
        telemetry.counter_add("lod/pruned", lod.pruned as u64);
        telemetry.gauge_set("slam/scene_size", self.scene.len() as f64);
        telemetry.record_pool_worker_deltas(&state.pool_accum);

        SlamResult {
            est_poses: state.est_poses,
            ate_cm,
            psnr_db: psnr,
            tracking_trace: state.tracking_trace,
            mapping_trace: state.mapping_trace,
            tracking_iters: state.tracking_iters,
            mapping_iters: state.mapping_iters,
            frames: n,
            mapping_invocations: state.mapping_invocations,
            scene_size: self.scene.len(),
        }
    }

    /// Flushes the session-scoped cache/pool telemetry accumulators into
    /// `telemetry` and resets them.
    ///
    /// Snapshots deliberately exclude execution telemetry (DESIGN.md §12),
    /// so the accumulators would be lost when a serving layer evicts this
    /// system to disk and later resumes it. Evicting callers flush first;
    /// counters are additive, so the flushed amounts plus whatever
    /// [`Self::finalize`] exports after the last resume still cover the
    /// session's whole life. A no-op between runs.
    pub fn flush_counters(&mut self, telemetry: &Telemetry) {
        let Some(state) = self.run.as_mut() else {
            return;
        };
        let cache = state.cache_accum;
        state.cache_accum = projcache::CacheStats::default();
        telemetry.counter_add("render/cache_hits", cache.hits);
        telemetry.counter_add("render/cache_misses", cache.misses);
        telemetry.counter_add("render/cache_invalidations", cache.invalidations);
        let sort = state.sort_accum;
        state.sort_accum = tilesort::SortStats::default();
        telemetry.counter_add("render/sort_hits", sort.hits);
        telemetry.counter_add("render/sort_misses", sort.misses);
        telemetry.counter_add("render/sort_merges", sort.merges);
        telemetry.counter_add("render/sort_cold_elems", sort.cold_elems);
        telemetry.counter_add("render/sort_merged_elems", sort.merged_elems);
        let pool = std::mem::take(&mut state.pool_accum);
        telemetry.record_pool_worker_deltas(&pool);
    }

    /// Serializes the current run state into a [`Snapshot`].
    ///
    /// Between runs (no frame processed yet, or after [`Self::finalize`])
    /// the snapshot carries `next_frame == 0` and the current scene;
    /// resuming it starts a fresh run.
    pub fn checkpoint(&self) -> Snapshot {
        let cfg = &self.config;
        let base = Snapshot {
            seed: cfg.seed,
            config_fingerprint: cfg.fingerprint(),
            next_frame: 0,
            scene_revision: self.scene.revision(),
            gaussians: self.scene.to_vec(),
            est_poses: Vec::new(),
            keyframes: Vec::new(),
            adam_t: 0,
            adam_moments: Vec::new(),
            tracking_iters: 0,
            mapping_iters: 0,
            mapping_invocations: 0,
            tracking_trace: RenderTrace::new(),
            mapping_trace: RenderTrace::new(),
        };
        match &self.run {
            None => base,
            Some(r) => Snapshot {
                next_frame: r.next_frame,
                est_poses: r.est_poses.clone(),
                keyframes: r
                    .keyframe_indices
                    .iter()
                    .zip(r.keyframes.iter())
                    .map(|(&idx, kf)| (idx, kf.pose))
                    .collect(),
                adam_t: r.map_adam.step_count(),
                adam_moments: r.map_adam.scalars().iter().map(|s| s.moments()).collect(),
                tracking_iters: r.tracking_iters,
                mapping_iters: r.mapping_iters,
                mapping_invocations: r.mapping_invocations,
                tracking_trace: r.tracking_trace.clone(),
                mapping_trace: r.mapping_trace.clone(),
                ..base
            },
        }
    }

    /// Encodes the current run state and hands it to `sink`, recording the
    /// `checkpoint` span, the `slam/checkpoints_written` counter, and the
    /// `slam/snapshot_bytes` gauge. [`Self::run_with_checkpoints`] calls
    /// this on the configured cadence; harnesses driving
    /// [`Self::step_frame`] directly (fault injection) call it themselves.
    ///
    /// # Errors
    ///
    /// Propagates the sink's error.
    pub fn emit_checkpoint(
        &self,
        telemetry: &Telemetry,
        sink: &mut CheckpointSink,
    ) -> Result<(), SnapshotError> {
        let _span = telemetry.span("checkpoint");
        let snapshot = self.checkpoint();
        let bytes = snapshot.to_bytes();
        telemetry.counter_add("slam/checkpoints_written", 1);
        telemetry.gauge_set("slam/snapshot_bytes", bytes.len() as f64);
        sink(&snapshot, &bytes)
    }

    /// Reconstructs a mid-run system from a snapshot, validating it against
    /// the configuration and dataset it will continue under. The next
    /// [`Self::run_with_telemetry`] / [`Self::run_with_checkpoints`] /
    /// [`Self::step_frame`] call continues from `snapshot.next_frame`, and
    /// the completed run is bitwise identical to one that was never
    /// interrupted (see `tests/` and `scripts/fault_inject.sh`).
    ///
    /// # Errors
    ///
    /// * [`SnapshotError::ConfigMismatch`] — `config` fingerprints
    ///   differently from the configuration the snapshot was taken under
    ///   (different algorithm, sampling, seed, ...); continuing would
    ///   silently diverge from the original run.
    /// * [`SnapshotError::FrameOutOfRange`] — the snapshot references
    ///   frames past the end of `dataset`.
    /// * [`SnapshotError::Malformed`] — internally inconsistent state
    ///   (trajectory length disagrees with the frame cursor).
    pub fn resume(
        config: SlamConfig,
        intrinsics: Intrinsics,
        dataset: &Dataset,
        snapshot: &Snapshot,
    ) -> Result<SlamSystem, SnapshotError> {
        if snapshot.config_fingerprint != config.fingerprint() {
            return Err(SnapshotError::ConfigMismatch(
                "result-affecting SlamConfig fingerprint",
            ));
        }
        if snapshot.next_frame > dataset.len() {
            return Err(SnapshotError::FrameOutOfRange {
                frame: snapshot.next_frame,
                dataset_len: dataset.len(),
            });
        }
        if snapshot.est_poses.len() != snapshot.next_frame {
            return Err(SnapshotError::Malformed(
                "trajectory length disagrees with next_frame",
            ));
        }
        for &(idx, _) in &snapshot.keyframes {
            if idx >= dataset.len() {
                return Err(SnapshotError::FrameOutOfRange {
                    frame: idx,
                    dataset_len: dataset.len(),
                });
            }
        }
        let scene = snapshot.restore_scene();
        let run = if snapshot.next_frame == 0 {
            None
        } else {
            let mut keyframes = Vec::with_capacity(snapshot.keyframes.len());
            let mut keyframe_indices = Vec::with_capacity(snapshot.keyframes.len());
            for &(idx, pose) in &snapshot.keyframes {
                keyframes.push(Keyframe {
                    frame: dataset.frames[idx].clone(),
                    pose,
                });
                keyframe_indices.push(idx);
            }
            Some(RunState {
                next_frame: snapshot.next_frame,
                est_poses: snapshot.est_poses.clone(),
                keyframes,
                keyframe_indices,
                map_adam: snapshot.restore_adam(),
                tracking_trace: snapshot.tracking_trace.clone(),
                mapping_trace: snapshot.mapping_trace.clone(),
                tracking_iters: snapshot.tracking_iters,
                mapping_iters: snapshot.mapping_iters,
                mapping_invocations: snapshot.mapping_invocations,
                pool_accum: Vec::new(),
                cache_accum: projcache::CacheStats::default(),
                sort_accum: tilesort::SortStats::default(),
            })
        };
        Ok(SlamSystem {
            config,
            intrinsics,
            scene,
            run,
        })
    }

    /// Anchor-frame processing: pose given, scene seeded from the first
    /// frame's depth, initial mapping to refine the seed. Leaves
    /// `next_frame == 1`.
    fn init_run(&mut self, dataset: &Dataset, telemetry: &Telemetry) {
        // Flat span: aggregates under the verbatim name "frame" (one record
        // per processed frame, anchor included) without nesting the
        // tracking/mapping paths beneath it.
        let _frame = telemetry.span_flat("frame");
        // Bracket this frame's window so the pool's per-worker busy time
        // and the projection-cache deltas attribute to *this* run even when
        // a session manager interleaves several runs on one thread.
        let pool_before = if telemetry.is_enabled() {
            splatonic_math::pool::worker_stats_snapshot()
        } else {
            Vec::new()
        };
        // Projection-cache statistics are thread-local side-band state (not
        // part of the render trace — see `projcache`); bracket each frame
        // with snapshots to accumulate this run's deltas.
        let cache_before = projcache::stats();
        let sort_before = tilesort::stats();
        let cfg = self.config;
        let algo = cfg.algorithm;

        // Anchor: the first pose is given (standard convention) and the
        // scene is seeded from the first frame.
        self.scene = seed_scene_from_frame(
            &dataset.frames[0],
            self.intrinsics,
            dataset.gt_poses[0],
            cfg.seed_stride,
        );
        let mut state = RunState {
            next_frame: 1,
            est_poses: vec![dataset.gt_poses[0]],
            keyframes: vec![Keyframe {
                frame: dataset.frames[0].clone(),
                pose: dataset.gt_poses[0],
            }],
            keyframe_indices: vec![0],
            map_adam: AdamVector::new(0),
            tracking_trace: RenderTrace::new(),
            mapping_trace: RenderTrace::new(),
            tracking_iters: 0,
            mapping_iters: 0,
            mapping_invocations: 0,
            pool_accum: Vec::new(),
            cache_accum: projcache::CacheStats::default(),
            sort_accum: tilesort::SortStats::default(),
        };
        let sampler = MappingSampler::new(cfg.mapping_tile, cfg.mapping_strategy);

        // Initial mapping refines the seeded scene.
        let cache_frame_start = projcache::stats();
        let map0_start = Instant::now();
        let m0 = {
            let _span = telemetry.span("mapping");
            map_scene_with_state(
                &mut self.scene,
                &state.keyframes,
                self.intrinsics,
                &sampler,
                &algo,
                cfg.pipeline,
                &cfg.render,
                cfg.seed,
                &mut state.map_adam,
                telemetry,
            )
        };
        state.mapping_trace.merge(&m0.trace);
        state.mapping_iters += m0.iters;
        state.mapping_invocations += 1;
        if telemetry.is_enabled() {
            let cache_frame = projcache::stats().since(&cache_frame_start);
            telemetry.record_frame(FrameRecord {
                frame_idx: 0,
                track_iters: 0,
                map_invoked: true,
                sampled_pixels: 0, // tracking never runs on the anchor frame
                map_sampled_pixels: m0.sampled_pixels,
                gaussian_count: self.scene.len(),
                cache_hits: cache_frame.hits,
                cache_invalidations: cache_frame.invalidations,
                psnr_db: self.frame_psnr(&dataset.frames[0], state.est_poses[0]),
                ate_so_far_cm: 0.0, // the anchor pose is given
                track_ms: 0.0,
                map_ms: map0_start.elapsed().as_secs_f64() * 1e3,
            });
        }
        state
            .cache_accum
            .add(&projcache::stats().since(&cache_before));
        state.sort_accum.add(&tilesort::stats().since(&sort_before));
        if telemetry.is_enabled() {
            accumulate_pool(&mut state.pool_accum, &pool_before);
        }
        self.run = Some(state);
    }

    /// One loop iteration: track frame `t`, push a keyframe and map on the
    /// `mapping_every` cadence, record the frame.
    fn process_frame(&mut self, dataset: &Dataset, t: usize, telemetry: &Telemetry) {
        let _frame = telemetry.span_flat("frame");
        // Frame-wide attribution window (see `init_run`): deltas taken at
        // the end of this function accumulate into this run's own totals.
        let pool_before = if telemetry.is_enabled() {
            splatonic_math::pool::worker_stats_snapshot()
        } else {
            Vec::new()
        };
        let cache_before = projcache::stats();
        let sort_before = tilesort::stats();
        let cfg = self.config;
        let algo = cfg.algorithm;
        let mut state = self.run.take().expect("active run");
        let sampler = MappingSampler::new(cfg.mapping_tile, cfg.mapping_strategy);

        let prev = state.est_poses[t - 1];
        let prev_prev = if t >= 2 {
            Some(state.est_poses[t - 2])
        } else {
            None
        };
        let init = constant_velocity_init(prev, prev_prev);
        let cache_frame_start = projcache::stats();
        let track_start = Instant::now();
        let out = {
            let _span = telemetry.span("tracking");
            track_frame_with_telemetry(
                &self.scene,
                self.intrinsics,
                init,
                &dataset.frames[t],
                cfg.tracking_sampling,
                cfg.pipeline,
                &algo,
                &cfg.render,
                cfg.seed ^ (t as u64).wrapping_mul(0xA5A5_5A5A),
                telemetry,
            )
        };
        let track_ms = track_start.elapsed().as_secs_f64() * 1e3;
        state.tracking_trace.merge(&out.trace);
        state.tracking_iters += out.iters;
        state.est_poses.push(out.pose);

        let mut map_invoked = false;
        let mut map_ms = 0.0;
        let mut map_sampled_pixels = 0usize;
        if t.is_multiple_of(algo.mapping_every) {
            state.keyframes.push(Keyframe {
                frame: dataset.frames[t].clone(),
                pose: out.pose,
            });
            state.keyframe_indices.push(t);
            if state.keyframes.len() > algo.keyframe_window {
                let cut = state.keyframes.len() - algo.keyframe_window;
                state.keyframes.drain(..cut);
                state.keyframe_indices.drain(..cut);
            }
            let map_start = Instant::now();
            let m = {
                let _span = telemetry.span("mapping");
                map_scene_with_state(
                    &mut self.scene,
                    &state.keyframes,
                    self.intrinsics,
                    &sampler,
                    &algo,
                    cfg.pipeline,
                    &cfg.render,
                    cfg.seed ^ (t as u64).wrapping_mul(0x5A5A_A5A5) ^ 0xF0F0,
                    &mut state.map_adam,
                    telemetry,
                )
            };
            map_ms = map_start.elapsed().as_secs_f64() * 1e3;
            map_invoked = true;
            map_sampled_pixels = m.sampled_pixels;
            state.mapping_trace.merge(&m.trace);
            state.mapping_iters += m.iters;
            state.mapping_invocations += 1;
        }

        if telemetry.is_enabled() {
            let cache_frame = projcache::stats().since(&cache_frame_start);
            telemetry.record_frame(FrameRecord {
                frame_idx: t,
                track_iters: out.iters,
                map_invoked,
                sampled_pixels: out.sampled_pixels,
                map_sampled_pixels,
                gaussian_count: self.scene.len(),
                cache_hits: cache_frame.hits,
                cache_invalidations: cache_frame.invalidations,
                psnr_db: self.frame_psnr(&dataset.frames[t], out.pose),
                ate_so_far_cm: ate_rmse_cm(&state.est_poses, &dataset.gt_poses[..=t]),
                track_ms,
                map_ms,
            });
        }
        state
            .cache_accum
            .add(&projcache::stats().since(&cache_before));
        state.sort_accum.add(&tilesort::stats().since(&sort_before));
        if telemetry.is_enabled() {
            accumulate_pool(&mut state.pool_accum, &pool_before);
        }
        state.next_frame = t + 1;
        self.run = Some(state);
    }

    /// PSNR of the current map rendered densely at `pose` versus `frame`.
    fn frame_psnr(&self, frame: &Frame, pose: Pose) -> f64 {
        crate::metrics::scene_frame_psnr(
            &self.scene,
            self.intrinsics,
            &self.config.render,
            frame,
            pose,
        )
    }

    /// Mean PSNR of final-map renders at every `stride`-th frame pose.
    /// Delegates to [`crate::metrics::evaluate_scene_psnr`] so standalone
    /// pipelines evaluate with identical arithmetic.
    fn evaluate_psnr(&self, dataset: &Dataset, est_poses: &[Pose], stride: usize) -> f64 {
        crate::metrics::evaluate_scene_psnr(
            &self.scene,
            self.intrinsics,
            &self.config.render,
            dataset,
            est_poses,
            stride,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn tiny() -> Dataset {
        Dataset::replica_like(
            "sys-test",
            21,
            DatasetConfig {
                width: 64,
                height: 48,
                frames: 9,
                spacing: 0.3,
                fov: 1.25,
                furniture: 2,
                depth_dropout_coverage: 0.9,
            },
        )
    }

    #[test]
    fn slam_runs_end_to_end_sparse() {
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let r = sys.run(&d);
        assert_eq!(r.est_poses.len(), 9);
        assert_eq!(r.frames, 9);
        assert!(r.ate_cm.is_finite());
        assert!(
            r.ate_cm < 10.0,
            "sparse SLAM should track within 10 cm on an easy sequence: {} cm",
            r.ate_cm
        );
        assert!(r.psnr_db > 12.0, "PSNR {}", r.psnr_db);
        assert!(r.scene_size > 100);
        assert!(r.tracking_iters > 0 && r.mapping_iters > 0);
        assert!(r.mapping_invocations >= 2);
    }

    #[test]
    fn traces_separate_tracking_and_mapping() {
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let r = sys.run(&d);
        assert!(r.tracking_trace.forward.pixels_shaded > 0);
        assert!(r.mapping_trace.forward.pixels_shaded > 0);
        // Mapping renders dense Γ passes, so its per-invocation pixel count
        // is much larger; tracking runs on far sparser sets.
        let track_px = r.tracking_trace.forward.pixels_shaded as f64 / r.tracking_iters as f64;
        let map_px = r.mapping_trace.forward.pixels_shaded as f64 / r.mapping_iters as f64;
        assert!(map_px > track_px);
    }

    #[test]
    fn telemetry_records_spans_frames_and_counters() {
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let telemetry = Telemetry::enabled();
        let r = sys.run_with_telemetry(&d, &telemetry);
        let report = telemetry.finish(
            "sys-test",
            splatonic_telemetry::AccuracySummary {
                ate_cm: r.ate_cm,
                psnr_db: r.psnr_db,
                frames: r.frames,
                scene_size: r.scene_size,
            },
        );
        // One record per frame, running metrics populated.
        assert_eq!(report.frames.len(), r.frames);
        assert!(report.frames[1..].iter().all(|f| f.track_iters > 0));
        assert!(report.frames.iter().any(|f| f.map_invoked));
        // Every mapping invocation renders pixels, and that count must reach
        // the frame record (anchor frame included).
        for f in &report.frames {
            if f.map_invoked {
                assert!(
                    f.map_sampled_pixels > 0,
                    "frame {} mapped but reports zero sampled pixels",
                    f.frame_idx
                );
            } else {
                assert_eq!(f.map_sampled_pixels, 0, "frame {}", f.frame_idx);
            }
        }
        assert!(report.frames.last().unwrap().psnr_db.is_finite());
        assert!(report.frames.last().unwrap().ate_so_far_cm.is_finite());
        // Nested spans: render passes under tracking and mapping.
        let span = |p: &str| report.spans.iter().find(|(n, _)| n == p);
        for path in [
            "tracking",
            "tracking/forward",
            "tracking/backward",
            "mapping",
            "mapping/gamma_dense",
            "mapping/forward",
            "mapping/backward",
        ] {
            assert!(span(path).is_some(), "missing span {path}");
        }
        assert_eq!(span("tracking").unwrap().1.count(), r.frames - 1);
        assert_eq!(span("mapping").unwrap().1.count(), r.mapping_invocations);
        // Flat spans: recorded under their verbatim names (no nesting), with
        // deterministic counts — one "frame" per processed frame, one
        // "finalize" and one "psnr_eval" per run.
        assert_eq!(span("frame").unwrap().1.count(), r.frames);
        assert_eq!(span("finalize").unwrap().1.count(), 1);
        assert_eq!(span("psnr_eval").unwrap().1.count(), 1);
        // Workload counters match the aggregated traces.
        let counter = |n: &str| {
            report
                .counters
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(
            counter("tracking/forward/pixels_shaded"),
            r.tracking_trace.forward.pixels_shaded
        );
        assert_eq!(
            counter("mapping/backward/atomic_adds"),
            r.mapping_trace.backward.atomic_adds
        );
        assert!(counter("mapping/gaussians_densified") > 0);
    }

    #[test]
    fn frame_records_report_exact_sampled_pixels() {
        // satellite of PR 5: `sampled_pixels` must be the tracker's exact
        // total, not a mean×iters reconstruction.
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let telemetry = Telemetry::enabled();
        let r = sys.run_with_telemetry(&d, &telemetry);
        let report = telemetry.finish(
            "sys-exact-pixels",
            splatonic_telemetry::AccuracySummary::default(),
        );
        let total: u64 = report.frames.iter().map(|f| f.sampled_pixels as u64).sum();
        assert_eq!(
            total, r.tracking_trace.forward.pixels_shaded,
            "per-frame sampled_pixels must sum to the trace's exact total"
        );
    }

    #[test]
    fn telemetry_does_not_change_results() {
        let d = tiny();
        let mut a = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let ra = a.run(&d);
        let mut b = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let rb = b.run_with_telemetry(&d, &Telemetry::enabled());
        assert_eq!(ra.est_poses, rb.est_poses);
        assert_eq!(ra.ate_cm, rb.ate_cm);
        assert_eq!(ra.tracking_trace, rb.tracking_trace);
    }

    #[test]
    fn slam_results_identical_across_thread_counts() {
        // End-to-end determinism: the whole SLAM loop — sampling, tracking,
        // mapping, densify/prune — must be bit-identical for every worker
        // count (the pool's golden contract, satellite of PR 3).
        let d = tiny();
        let run = |threads: usize| {
            let mut cfg = SlamConfig::default();
            cfg.render.threads = threads;
            SlamSystem::new(cfg, d.intrinsics).run(&d)
        };
        let r1 = run(1);
        for threads in [2, 8] {
            let r = run(threads);
            assert_eq!(r1.est_poses, r.est_poses, "{threads} workers");
            assert_eq!(r1.ate_cm.to_bits(), r.ate_cm.to_bits(), "{threads} workers");
            assert_eq!(
                r1.psnr_db.to_bits(),
                r.psnr_db.to_bits(),
                "{threads} workers"
            );
            assert_eq!(r1.tracking_trace, r.tracking_trace, "{threads} workers");
            assert_eq!(r1.mapping_trace, r.mapping_trace, "{threads} workers");
            assert_eq!(r1.scene_size, r.scene_size, "{threads} workers");
        }
    }

    #[test]
    fn checkpoint_cadence_and_telemetry() {
        let d = tiny();
        let cfg = SlamConfig {
            checkpoint_every: 3,
            ..Default::default()
        };
        let mut sys = SlamSystem::new(cfg, d.intrinsics);
        let telemetry = Telemetry::enabled();
        let mut cuts: Vec<usize> = Vec::new();
        let mut last_bytes = 0usize;
        let r = sys
            .run_with_checkpoints(&d, &telemetry, &mut |snap, bytes| {
                cuts.push(snap.next_frame);
                last_bytes = bytes.len();
                Ok(())
            })
            .expect("run completes");
        // Frames 0, 3, 6 fall on the cadence (9 frames, every 3).
        assert_eq!(cuts, vec![1, 4, 7]);
        assert!(last_bytes > 0);
        assert_eq!(r.frames, 9);
        let report = telemetry.finish("ckpt", splatonic_telemetry::AccuracySummary::default());
        let counter = |n: &str| {
            report
                .counters
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("slam/checkpoints_written"), 3);
        assert!(report.spans.iter().any(|(n, _)| n == "checkpoint"));
        assert!(report
            .gauges
            .iter()
            .any(|(n, v)| n == "slam/snapshot_bytes" && *v > 0.0));
    }

    #[test]
    fn checkpointing_does_not_change_results() {
        let d = tiny();
        let mut plain = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let ra = plain.run(&d);
        let cfg = SlamConfig {
            checkpoint_every: 2,
            ..Default::default()
        };
        let mut chk = SlamSystem::new(cfg, d.intrinsics);
        let rb = chk
            .run_with_checkpoints(&d, &Telemetry::disabled(), &mut |_, _| Ok(()))
            .unwrap();
        assert_eq!(ra.est_poses, rb.est_poses);
        assert_eq!(ra.ate_cm.to_bits(), rb.ate_cm.to_bits());
        assert_eq!(ra.psnr_db.to_bits(), rb.psnr_db.to_bits());
        assert_eq!(ra.tracking_trace, rb.tracking_trace);
        assert_eq!(ra.mapping_trace, rb.mapping_trace);
    }

    #[test]
    fn sink_error_aborts_run() {
        let d = tiny();
        let cfg = SlamConfig {
            checkpoint_every: 1,
            ..Default::default()
        };
        let mut sys = SlamSystem::new(cfg, d.intrinsics);
        let err = sys
            .run_with_checkpoints(&d, &Telemetry::disabled(), &mut |_, _| {
                Err(SnapshotError::Io("disk full".into()))
            })
            .expect_err("sink error must propagate");
        assert_eq!(err, SnapshotError::Io("disk full".into()));
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        sys.step_frame(&d, &Telemetry::disabled());
        let snap = sys.checkpoint();
        let other = SlamConfig {
            seed: 999,
            ..Default::default()
        };
        let err = SlamSystem::resume(other, d.intrinsics, &d, &snap).expect_err("stale");
        assert!(matches!(err, SnapshotError::ConfigMismatch(_)));
        // Thread width is bitwise-transparent and must NOT be stale.
        let mut wide = SlamConfig::default();
        wide.render.threads = 7;
        assert!(SlamSystem::resume(wide, d.intrinsics, &d, &snap).is_ok());
    }

    #[test]
    fn resume_rejects_out_of_range_frames() {
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        for _ in 0..5 {
            sys.step_frame(&d, &Telemetry::disabled());
        }
        let mut snap = sys.checkpoint();
        snap.keyframes.push((999, Pose::identity()));
        let err =
            SlamSystem::resume(SlamConfig::default(), d.intrinsics, &d, &snap).expect_err("oob");
        assert!(matches!(err, SnapshotError::FrameOutOfRange { .. }));
    }

    #[test]
    fn kill_and_resume_is_bitwise_identical() {
        // The tentpole contract: stop after frame k, rebuild the system
        // from the snapshot's wire bytes, continue — everything the result
        // carries must be bitwise identical to the uninterrupted run.
        let d = tiny();
        let mut uninterrupted = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let full = uninterrupted.run(&d);
        for kill_after in [1, 4, 8] {
            let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
            for _ in 0..=kill_after {
                sys.step_frame(&d, &Telemetry::disabled());
            }
            let bytes = sys.checkpoint().to_bytes();
            drop(sys); // the "crash"
            let snap = Snapshot::from_bytes(&bytes).expect("snapshot decodes");
            let mut resumed =
                SlamSystem::resume(SlamConfig::default(), d.intrinsics, &d, &snap).unwrap();
            let r = resumed.run(&d);
            assert_eq!(full.est_poses, r.est_poses, "kill after {kill_after}");
            assert_eq!(full.ate_cm.to_bits(), r.ate_cm.to_bits());
            assert_eq!(full.psnr_db.to_bits(), r.psnr_db.to_bits());
            assert_eq!(full.tracking_trace, r.tracking_trace);
            assert_eq!(full.mapping_trace, r.mapping_trace);
            assert_eq!(full.scene_size, r.scene_size);
        }
    }

    #[test]
    fn run_twice_restarts_from_scratch() {
        // finalize() clears the run state, so a second run() re-anchors and
        // reproduces the first bit-for-bit (the pre-refactor behavior).
        let d = tiny();
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let a = sys.run(&d);
        let b = sys.run(&d);
        assert_eq!(a.est_poses, b.est_poses);
        assert_eq!(a.ate_cm.to_bits(), b.ate_cm.to_bits());
    }

    #[test]
    fn config_presets_differ() {
        let algo = AlgorithmConfig::default();
        let a = SlamConfig::dense_baseline(algo);
        let b = SlamConfig::splatonic(algo);
        let c = SlamConfig::original_plus_sampling(algo);
        assert_eq!(a.tracking_sampling, SamplingStrategy::Dense);
        assert_eq!(b.pipeline, Pipeline::PixelBased);
        assert_eq!(c.pipeline, Pipeline::TileBased);
        assert!(matches!(
            c.tracking_sampling,
            SamplingStrategy::RandomPerTile { tile: 16 }
        ));
        // Fingerprints separate result-affecting differences...
        assert_ne!(a.fingerprint(), b.fingerprint());
        // ...but ignore bitwise-transparent execution knobs.
        let mut b2 = b;
        b2.render.threads = 13;
        b2.render.binning = false;
        b2.render.cache = false;
        b2.checkpoint_every = 5;
        b2.lod_budget = 1000;
        assert_eq!(b.fingerprint(), b2.fingerprint());
        // The densify cap IS result-affecting, so it must separate.
        let mut b3 = b;
        b3.algorithm.densify_max_per_frame = 64;
        assert_ne!(b.fingerprint(), b3.fingerprint());
    }

    #[test]
    fn lod_budget_decimates_after_evaluation() {
        let d = tiny();
        // Baseline run: full scene size and PSNR.
        let mut full_sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let full = full_sys.run(&d);
        assert!(full.scene_size > 50);
        let budget = full.scene_size / 2;
        let telemetry = splatonic_telemetry::Telemetry::enabled();
        let mut sys = SlamSystem::new(
            SlamConfig {
                lod_budget: budget,
                ..SlamConfig::default()
            },
            d.intrinsics,
        );
        let r = sys.run_with_telemetry(&d, &telemetry);
        // Same run bitwise (LOD is post-run): poses and PSNR unchanged.
        assert_eq!(r.est_poses, full.est_poses);
        assert_eq!(r.psnr_db.to_bits(), full.psnr_db.to_bits());
        // Scene decimated to the budget, and the counter reports it.
        assert_eq!(r.scene_size, budget);
        assert_eq!(sys.scene().len(), budget);
        let report = telemetry.finish("lod-test", Default::default());
        let pruned = report
            .counters
            .iter()
            .find(|(n, _)| n == "lod/pruned")
            .map(|(_, v)| *v);
        assert_eq!(pruned, Some((full.scene_size - budget) as u64));
    }

    #[test]
    #[should_panic(expected = "must contain frames")]
    fn empty_dataset_panics() {
        let d = tiny();
        let empty = Dataset {
            name: "empty".into(),
            frames: Vec::new(),
            gt_poses: Vec::new(),
            intrinsics: d.intrinsics,
            world: d.world.clone(),
        };
        let mut sys = SlamSystem::new(SlamConfig::default(), d.intrinsics);
        let _ = sys.run(&empty);
    }
}
