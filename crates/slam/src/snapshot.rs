//! Versioned, bit-exact binary snapshots of the SLAM run state.
//!
//! A [`Snapshot`] captures everything [`crate::system::SlamSystem`] needs to
//! continue a run mid-sequence with results **bitwise identical** to the
//! uninterrupted run (DESIGN.md §12): the Gaussian scene, the estimated
//! trajectory, the keyframe window (as frame indices + poses — the RGB-D
//! images are rebuilt from the dataset at resume time), the mapping
//! optimizer's Adam moments and step count, the aggregated workload traces,
//! and the per-frame seed derivation point (`seed`, `next_frame` — per-frame
//! seeds are pure functions of these, so no RNG state exists to save).
//!
//! The wire format is dependency-free and versioned: an 8-byte magic, a
//! `u32` format version, the payload length, and an FNV-1a checksum of the
//! payload. Corrupt, truncated, or incompatible snapshots are rejected with
//! a typed [`SnapshotError`] instead of producing garbage state. All scalars
//! are little-endian; every `f64` travels via `to_bits`/`from_bits`, so the
//! round trip is bit-exact by construction (NaN payloads and signed zeros
//! included).
//!
//! Deliberately **not** captured: the projection cache and its thread-local
//! statistics (bitwise-transparent by contract), pool worker state, and the
//! scene's revision counter as an identity (it is stored as metadata but a
//! fresh revision is drawn on restore — revisions are process-unique).

use crate::adam::{AdamScalar, AdamVector};
use splatonic_math::stats::Summary;
use splatonic_math::{Mat3, Pose, Quat, Vec3};
use splatonic_render::trace::{BackwardStats, ForwardStats};
use splatonic_render::RenderTrace;
use splatonic_scene::{Gaussian, GaussianScene};
use std::fmt;
use std::path::Path;

/// Magic bytes identifying a SPLATONIC snapshot file.
pub const MAGIC: [u8; 8] = *b"SPLTSNAP";

/// Current snapshot format version. Bump on any wire-format change; old
/// readers reject newer versions with [`SnapshotError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 2;

/// Fixed header size: magic (8) + version (4) + payload length (8) +
/// checksum (8).
pub const HEADER_LEN: usize = 28;

/// Typed failure modes of snapshot decoding and resume validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The buffer ends before the announced payload does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload checksum does not match the header — bit rot or a
    /// partial/interrupted write.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload as read.
        computed: u64,
    },
    /// The payload decoded cleanly but bytes remain after the last field —
    /// the writer and reader disagree about the format.
    TrailingBytes(usize),
    /// A decoded count is implausibly large for the buffer that carries it
    /// (corruption the checksum caught too late to blame a single field).
    Malformed(&'static str),
    /// The snapshot is internally valid but stale for the given resume
    /// context: the named configuration aspect differs from the one the
    /// snapshot was taken under, so continuing would silently diverge.
    ConfigMismatch(&'static str),
    /// A keyframe or trajectory index points past the resume dataset.
    FrameOutOfRange {
        /// The offending frame index.
        frame: usize,
        /// Length of the dataset given to resume.
        dataset_len: usize,
    },
    /// Filesystem failure while reading or writing a snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a SPLATONIC snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads <= {FORMAT_VERSION})")
            }
            SnapshotError::Truncated { needed, available } => {
                write!(f, "snapshot truncated: needed {needed} bytes, have {available}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: header says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} trailing bytes after the last field")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::ConfigMismatch(what) => {
                write!(f, "snapshot is stale for this configuration: {what} differs")
            }
            SnapshotError::FrameOutOfRange { frame, dataset_len } => write!(
                f,
                "snapshot references frame {frame} but the resume dataset has {dataset_len} frames"
            ),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash — the payload checksum. Not cryptographic; it guards
/// against bit rot and partial writes, which is all a checkpoint needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded snapshot: the complete resumable state of a SLAM run.
///
/// Fields are public so the bench harness can build synthetic snapshots for
/// encode/decode micro-benchmarks; [`crate::system::SlamSystem::checkpoint`]
/// and [`crate::system::SlamSystem::resume`] are the real producers and
/// consumers.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Master seed of the run (per-frame seeds derive from it and the frame
    /// index alone).
    pub seed: u64,
    /// Fingerprint of the result-affecting configuration, so resuming under
    /// a different algorithm/sampling setup is rejected as stale.
    pub config_fingerprint: u64,
    /// Index of the first frame not yet processed.
    pub next_frame: usize,
    /// The scene's revision at checkpoint time. Metadata only: restore
    /// draws a fresh revision (see [`GaussianScene::from_vec`]).
    pub scene_revision: u64,
    /// The reconstructed scene's Gaussians.
    pub gaussians: Vec<Gaussian>,
    /// Estimated world-to-camera poses for frames `0..next_frame`.
    pub est_poses: Vec<Pose>,
    /// Keyframe window as (dataset frame index, estimated pose) — the RGB-D
    /// images are cloned back out of the dataset at resume time.
    pub keyframes: Vec<(usize, Pose)>,
    /// Mapping optimizer step count.
    pub adam_t: u64,
    /// Mapping optimizer first/second moment pairs, in parameter order.
    pub adam_moments: Vec<(f64, f64)>,
    /// Total tracking iterations executed so far.
    pub tracking_iters: usize,
    /// Total mapping iterations executed so far.
    pub mapping_iters: usize,
    /// Mapping invocations executed so far.
    pub mapping_invocations: usize,
    /// Aggregated tracking workload trace so far.
    pub tracking_trace: RenderTrace,
    /// Aggregated mapping workload trace so far.
    pub mapping_trace: RenderTrace,
}

impl Snapshot {
    /// Serializes to the versioned wire format (header + payload) at the
    /// current [`FORMAT_VERSION`].
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_versioned(FORMAT_VERSION)
    }

    /// Serializes at a specific still-supported format version
    /// (`1..=FORMAT_VERSION`). Version 1 predates the PR 9
    /// `sort_group_reuse` trace counter and simply omits it. Production
    /// code always writes the current version; this exists so the
    /// compatibility tests and the committed v1 fixture can be generated
    /// from real encoder code instead of hand-patched bytes.
    ///
    /// # Panics
    ///
    /// Panics if `version` is 0 or newer than [`FORMAT_VERSION`].
    pub fn to_bytes_versioned(&self, version: u32) -> Vec<u8> {
        assert!(
            (1..=FORMAT_VERSION).contains(&version),
            "cannot encode snapshot version {version}"
        );
        let mut payload = Vec::with_capacity(256 + self.gaussians.len() * 14 * 8);
        let w = &mut payload;
        put_u64(w, self.seed);
        put_u64(w, self.config_fingerprint);
        put_u64(w, self.next_frame as u64);
        put_u64(w, self.scene_revision);
        put_u64(w, self.gaussians.len() as u64);
        for g in &self.gaussians {
            put_gaussian(w, g);
        }
        put_u64(w, self.est_poses.len() as u64);
        for p in &self.est_poses {
            put_pose(w, p);
        }
        put_u64(w, self.keyframes.len() as u64);
        for (idx, pose) in &self.keyframes {
            put_u64(w, *idx as u64);
            put_pose(w, pose);
        }
        put_u64(w, self.adam_t);
        put_u64(w, self.adam_moments.len() as u64);
        for &(m, v) in &self.adam_moments {
            put_f64(w, m);
            put_f64(w, v);
        }
        put_u64(w, self.tracking_iters as u64);
        put_u64(w, self.mapping_iters as u64);
        put_u64(w, self.mapping_invocations as u64);
        put_trace(w, &self.tracking_trace, version);
        put_trace(w, &self.mapping_trace, version);

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a snapshot, validating magic, version, length, and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        // Older still-supported versions decode with their missing fields
        // defaulted (see `Cursor::trace`); only version 0 (never shipped)
        // and versions newer than this build are rejected, which makes the
        // `UnsupportedVersion` message ("reads <= {FORMAT_VERSION}") true.
        if version == 0 || version > FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let stored = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let available = bytes.len() - HEADER_LEN;
        if available < payload_len {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN + payload_len,
                available: bytes.len(),
            });
        }
        if available > payload_len {
            return Err(SnapshotError::TrailingBytes(available - payload_len));
        }
        let payload = &bytes[HEADER_LEN..];
        let computed = fnv1a(payload);
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        let mut c = Cursor::new(payload);
        let seed = c.u64()?;
        let config_fingerprint = c.u64()?;
        let next_frame = c.u64()? as usize;
        let scene_revision = c.u64()?;
        let n_gaussians = c.len_field("gaussians", 14 * 8)?;
        let mut gaussians = Vec::with_capacity(n_gaussians);
        for _ in 0..n_gaussians {
            gaussians.push(c.gaussian()?);
        }
        let n_poses = c.len_field("est_poses", 12 * 8)?;
        let mut est_poses = Vec::with_capacity(n_poses);
        for _ in 0..n_poses {
            est_poses.push(c.pose()?);
        }
        let n_keyframes = c.len_field("keyframes", 13 * 8)?;
        let mut keyframes = Vec::with_capacity(n_keyframes);
        for _ in 0..n_keyframes {
            let idx = c.u64()? as usize;
            keyframes.push((idx, c.pose()?));
        }
        let adam_t = c.u64()?;
        let n_moments = c.len_field("adam_moments", 16)?;
        let mut adam_moments = Vec::with_capacity(n_moments);
        for _ in 0..n_moments {
            adam_moments.push((c.f64()?, c.f64()?));
        }
        let tracking_iters = c.u64()? as usize;
        let mapping_iters = c.u64()? as usize;
        let mapping_invocations = c.u64()? as usize;
        let tracking_trace = c.trace(version)?;
        let mapping_trace = c.trace(version)?;
        if c.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes(c.remaining()));
        }
        Ok(Snapshot {
            seed,
            config_fingerprint,
            next_frame,
            scene_revision,
            gaussians,
            est_poses,
            keyframes,
            adam_t,
            adam_moments,
            tracking_iters,
            mapping_iters,
            mapping_invocations,
            tracking_trace,
            mapping_trace,
        })
    }

    /// Writes the snapshot atomically: encode to `<path>.tmp`, then rename.
    /// A crash mid-write leaves either the previous snapshot or a `.tmp`
    /// orphan — never a torn file that decodes.
    pub fn write_file(&self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    /// Reads and decodes a snapshot file.
    pub fn read_file(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Snapshot::from_bytes(&bytes)
    }

    /// Rebuilds the scene: contents restored bitwise, revision fresh (see
    /// [`GaussianScene::from_vec`]).
    pub fn restore_scene(&self) -> GaussianScene {
        GaussianScene::from_vec(self.gaussians.clone())
    }

    /// Rebuilds the mapping optimizer state bitwise.
    pub fn restore_adam(&self) -> AdamVector {
        AdamVector::from_parts(
            self.adam_t,
            self.adam_moments
                .iter()
                .map(|&(m, v)| AdamScalar::from_moments(m, v))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Encoding primitives. Everything below is little-endian; f64 travels as
// raw IEEE-754 bits.

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(w: &mut Vec<u8>, v: f64) {
    w.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_vec3(w: &mut Vec<u8>, v: Vec3) {
    put_f64(w, v.x);
    put_f64(w, v.y);
    put_f64(w, v.z);
}

fn put_gaussian(w: &mut Vec<u8>, g: &Gaussian) {
    put_vec3(w, g.mean);
    put_vec3(w, g.log_scale);
    put_f64(w, g.rotation.w);
    put_f64(w, g.rotation.x);
    put_f64(w, g.rotation.y);
    put_f64(w, g.rotation.z);
    put_f64(w, g.opacity_logit);
    put_vec3(w, g.color);
}

fn put_pose(w: &mut Vec<u8>, p: &Pose) {
    for &m in &p.rotation.m {
        put_f64(w, m);
    }
    put_vec3(w, p.translation);
}

fn put_summary(w: &mut Vec<u8>, s: &Summary) {
    put_u64(w, s.count() as u64);
    put_f64(w, s.sum());
    put_f64(w, s.sum_sq());
    put_f64(w, s.raw_min());
    put_f64(w, s.raw_max());
}

fn put_u32_list(w: &mut Vec<u8>, v: &[u32]) {
    put_u64(w, v.len() as u64);
    for &x in v {
        w.extend_from_slice(&x.to_le_bytes());
    }
}

/// Serializes a trace. The destructuring is deliberately exhaustive (no
/// `..`), mirroring [`RenderTrace::merge`]: adding a counter to the trace
/// structs fails compilation here until the snapshot format handles it (and
/// [`FORMAT_VERSION`] is bumped). `version` selects which fields are on the
/// wire: `sort_group_reuse` joined in version 2.
fn put_trace(w: &mut Vec<u8>, t: &RenderTrace, version: u32) {
    let RenderTrace {
        forward,
        backward,
        pixel_lists,
        proj_candidates,
    } = t;
    let ForwardStats {
        gaussians_input,
        gaussians_culled,
        gaussians_projected,
        tile_pairs,
        proj_alpha_checks,
        bin_candidates,
        proj_pairs_kept,
        sort_elems,
        sort_lists,
        sort_group_reuse,
        raster_alpha_checks,
        pairs_integrated,
        pixels_shaded,
        exp_evals,
        warp_steps,
        warp_active,
        pixel_list_len,
        bytes_read,
        bytes_written,
    } = forward;
    for v in [
        gaussians_input,
        gaussians_culled,
        gaussians_projected,
        tile_pairs,
        proj_alpha_checks,
        bin_candidates,
        proj_pairs_kept,
        sort_elems,
        sort_lists,
    ] {
        put_u64(w, *v);
    }
    if version >= 2 {
        put_u64(w, *sort_group_reuse);
    }
    for v in [
        raster_alpha_checks,
        pairs_integrated,
        pixels_shaded,
        exp_evals,
        warp_steps,
        warp_active,
        bytes_read,
        bytes_written,
    ] {
        put_u64(w, *v);
    }
    put_summary(w, pixel_list_len);
    let BackwardStats {
        alpha_checks,
        pairs_grad,
        reduction_ops,
        atomic_adds,
        exp_evals,
        warp_steps,
        warp_active,
        gaussian_touches,
        gaussians_touched,
        reprojections,
        bytes_read,
        bytes_written,
    } = backward;
    for v in [
        alpha_checks,
        pairs_grad,
        reduction_ops,
        atomic_adds,
        exp_evals,
        warp_steps,
        warp_active,
        gaussians_touched,
        reprojections,
        bytes_read,
        bytes_written,
    ] {
        put_u64(w, *v);
    }
    put_summary(w, gaussian_touches);
    put_u32_list(w, pixel_lists);
    put_u32_list(w, proj_candidates);
}

/// Bounds-checked payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN + self.pos + n,
                available: HEADER_LEN + self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix and sanity-checks it against the bytes left:
    /// a count whose elements (each at least `elem_bytes` wide) cannot fit
    /// in the remaining payload is corruption, reported before a huge
    /// `Vec::with_capacity` can abort the process.
    fn len_field(&mut self, what: &'static str, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()? as usize;
        if n.checked_mul(elem_bytes)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(SnapshotError::Malformed(what));
        }
        Ok(n)
    }

    fn vec3(&mut self) -> Result<Vec3, SnapshotError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }

    fn gaussian(&mut self) -> Result<Gaussian, SnapshotError> {
        let mean = self.vec3()?;
        let log_scale = self.vec3()?;
        let rotation = Quat {
            w: self.f64()?,
            x: self.f64()?,
            y: self.f64()?,
            z: self.f64()?,
        };
        let opacity_logit = self.f64()?;
        let color = self.vec3()?;
        Ok(Gaussian {
            mean,
            log_scale,
            rotation,
            opacity_logit,
            color,
        })
    }

    fn pose(&mut self) -> Result<Pose, SnapshotError> {
        let mut m = [0.0; 9];
        for v in &mut m {
            *v = self.f64()?;
        }
        let translation = self.vec3()?;
        Ok(Pose {
            rotation: Mat3 { m },
            translation,
        })
    }

    fn summary(&mut self) -> Result<Summary, SnapshotError> {
        let count = self.u64()? as usize;
        let sum = self.f64()?;
        let sum_sq = self.f64()?;
        let min = self.f64()?;
        let max = self.f64()?;
        Ok(Summary::from_parts(count, sum, sum_sq, min, max))
    }

    fn u32_list(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.len_field("u32 list", 4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    /// Decodes a trace written at `version`: snapshots older than version 2
    /// predate `sort_group_reuse`, so the field defaults to zero (the value
    /// a pre-PR-9 build would have observed).
    fn trace(&mut self, version: u32) -> Result<RenderTrace, SnapshotError> {
        let mut t = RenderTrace::new();
        {
            let f = &mut t.forward;
            f.gaussians_input = self.u64()?;
            f.gaussians_culled = self.u64()?;
            f.gaussians_projected = self.u64()?;
            f.tile_pairs = self.u64()?;
            f.proj_alpha_checks = self.u64()?;
            f.bin_candidates = self.u64()?;
            f.proj_pairs_kept = self.u64()?;
            f.sort_elems = self.u64()?;
            f.sort_lists = self.u64()?;
            f.sort_group_reuse = if version >= 2 { self.u64()? } else { 0 };
            f.raster_alpha_checks = self.u64()?;
            f.pairs_integrated = self.u64()?;
            f.pixels_shaded = self.u64()?;
            f.exp_evals = self.u64()?;
            f.warp_steps = self.u64()?;
            f.warp_active = self.u64()?;
            f.bytes_read = self.u64()?;
            f.bytes_written = self.u64()?;
            f.pixel_list_len = self.summary()?;
        }
        {
            let b = &mut t.backward;
            b.alpha_checks = self.u64()?;
            b.pairs_grad = self.u64()?;
            b.reduction_ops = self.u64()?;
            b.atomic_adds = self.u64()?;
            b.exp_evals = self.u64()?;
            b.warp_steps = self.u64()?;
            b.warp_active = self.u64()?;
            b.gaussians_touched = self.u64()?;
            b.reprojections = self.u64()?;
            b.bytes_read = self.u64()?;
            b.bytes_written = self.u64()?;
            b.gaussian_touches = self.summary()?;
        }
        t.pixel_lists = self.u32_list()?;
        t.proj_candidates = self.u32_list()?;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut tracking_trace = RenderTrace::new();
        tracking_trace.forward.pixels_shaded = 123;
        tracking_trace.forward.pixel_list_len.push(3.0);
        tracking_trace.forward.pixel_list_len.push(7.5);
        tracking_trace.backward.atomic_adds = 9;
        tracking_trace.pixel_lists = vec![1, 2, 3];
        tracking_trace.proj_candidates = vec![4, 5];
        let g = Gaussian::new(
            Vec3::new(0.5, -1.25, 2.0),
            Vec3::splat(0.1),
            Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 0.3),
            0.8,
            Vec3::new(0.9, 0.1, 0.4),
        );
        Snapshot {
            seed: 42,
            config_fingerprint: 0xDEAD_BEEF,
            next_frame: 5,
            scene_revision: 17,
            gaussians: vec![g; 3],
            est_poses: vec![Pose::identity(); 5],
            keyframes: vec![(0, Pose::identity()), (4, Pose::identity())],
            adam_t: 11,
            adam_moments: vec![(0.25, -0.5), (1e-9, 3.0)],
            tracking_iters: 40,
            mapping_iters: 30,
            mapping_invocations: 2,
            tracking_trace,
            mapping_trace: RenderTrace::new(),
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let s = sample_snapshot();
        let bytes = s.to_bytes();
        let d = Snapshot::from_bytes(&bytes).expect("decodes");
        assert_eq!(d, s);
        // Empty summaries keep their ±∞ sentinels bitwise.
        assert_eq!(
            d.mapping_trace.forward.pixel_list_len.raw_min().to_bits(),
            f64::INFINITY.to_bits()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Snapshot::from_bytes(&bytes), Err(SnapshotError::BadMagic));
        assert_eq!(Snapshot::from_bytes(b"short"), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        );
        // Version 0 never shipped — it is not "older", it is garbage.
        let mut zero = sample_snapshot().to_bytes();
        zero[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&zero),
            Err(SnapshotError::UnsupportedVersion(0))
        );
    }

    /// The snapshot the committed v1 fixture is generated from. Fully
    /// deterministic so `regen_v1_fixture` always reproduces the same
    /// bytes. `sort_group_reuse` is deliberately nonzero: version 1 cannot
    /// carry it, so decoding must zero it.
    fn v1_fixture_snapshot() -> Snapshot {
        let mut s = sample_snapshot();
        s.tracking_trace.forward.sort_group_reuse = 777;
        s.mapping_trace.forward.sort_group_reuse = 31;
        s
    }

    /// What a v1 decode of [`v1_fixture_snapshot`] must produce: identical
    /// state with the post-v1 counters at their pre-PR-9 value of zero.
    fn v1_expected_snapshot() -> Snapshot {
        let mut s = v1_fixture_snapshot();
        s.tracking_trace.forward.sort_group_reuse = 0;
        s.mapping_trace.forward.sort_group_reuse = 0;
        s
    }

    fn v1_fixture_path() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../plans/fixtures/snapshot_v1.snap")
    }

    #[test]
    fn v1_snapshot_decodes_with_defaulted_sort_counters() {
        let s = v1_fixture_snapshot();
        let bytes = s.to_bytes_versioned(1);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        // v1 payloads are 16 bytes shorter: one u64 per trace.
        assert_eq!(bytes.len() + 16, s.to_bytes().len());
        let decoded = Snapshot::from_bytes(&bytes).expect("v1 must decode");
        assert_eq!(decoded, v1_expected_snapshot());
    }

    #[test]
    fn v1_decode_still_validates_checksum_and_truncation() {
        let bytes = v1_fixture_snapshot().to_bytes_versioned(1);
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN + 40] ^= 0x10;
        assert!(matches!(
            Snapshot::from_bytes(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn committed_v1_fixture_decodes() {
        // Regression gate for the compatibility promise: a snapshot file
        // written by a pre-PR-9 build (committed at
        // plans/fixtures/snapshot_v1.snap, regenerated by
        // `regen_v1_fixture`) keeps decoding on every future build.
        let bytes = std::fs::read(v1_fixture_path())
            .expect("committed fixture plans/fixtures/snapshot_v1.snap must exist");
        let decoded = Snapshot::from_bytes(&bytes).expect("committed v1 fixture must decode");
        assert_eq!(decoded, v1_expected_snapshot());
    }

    /// Regenerates the committed v1 fixture. Run explicitly after a
    /// deliberate change to the fixture contents:
    /// `cargo test -p splatonic-slam regen_v1_fixture -- --ignored`
    #[test]
    #[ignore = "writes the committed fixture; run on purpose only"]
    fn regen_v1_fixture() {
        let path = v1_fixture_path();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, v1_fixture_snapshot().to_bytes_versioned(1)).unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot encode snapshot version")]
    fn encoding_a_future_version_panics() {
        let _ = sample_snapshot().to_bytes_versioned(FORMAT_VERSION + 1);
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let bytes = sample_snapshot().to_bytes();
        for cut in [
            8,
            HEADER_LEN - 1,
            HEADER_LEN,
            HEADER_LEN + 9,
            bytes.len() - 1,
        ] {
            let err = Snapshot::from_bytes(&bytes[..cut]).expect_err("must reject");
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "cut at {cut}: got {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_payload_rejected_by_checksum() {
        let mut bytes = sample_snapshot().to_bytes();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes.push(0);
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::TrailingBytes(1))
        );
    }

    #[test]
    fn restored_scene_gets_fresh_revision() {
        let s = sample_snapshot();
        let a = s.restore_scene();
        let b = s.restore_scene();
        assert_eq!(a, b); // content-equal...
        assert_ne!(a.revision(), b.revision()); // ...never identity-equal
        assert_ne!(a.revision(), s.scene_revision);
    }

    #[test]
    fn restored_adam_is_bitwise_equal() {
        let s = sample_snapshot();
        let adam = s.restore_adam();
        assert_eq!(adam.step_count(), s.adam_t);
        let roundtrip: Vec<(f64, f64)> = adam.scalars().iter().map(|x| x.moments()).collect();
        for (a, b) in roundtrip.iter().zip(s.adam_moments.iter()) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn file_round_trip_and_io_error() {
        let dir = std::env::temp_dir().join("splatonic-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let s = sample_snapshot();
        s.write_file(&path).unwrap();
        assert_eq!(Snapshot::read_file(&path).unwrap(), s);
        let missing = dir.join("does-not-exist.snap");
        assert!(matches!(
            Snapshot::read_file(&missing),
            Err(SnapshotError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
