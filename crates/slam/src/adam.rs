//! Adam optimizer states for pose and Gaussian parameters.
//!
//! Both SLAM processes are first-order optimizations (paper Sec. II-B);
//! Adam is the de-facto choice of the reference implementations.

/// Scalar Adam state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdamScalar {
    m: f64,
    v: f64,
}

impl AdamScalar {
    /// Rebuilds scalar state from raw moments (snapshot deserialization).
    pub fn from_moments(m: f64, v: f64) -> Self {
        AdamScalar { m, v }
    }

    /// The raw `(m, v)` moment pair (snapshot serialization).
    pub fn moments(&self) -> (f64, f64) {
        (self.m, self.v)
    }
}

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamParams {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical epsilon.
    pub eps: f64,
}

impl AdamParams {
    /// Creates parameters with the standard betas and the given rate.
    pub fn with_lr(lr: f64) -> Self {
        AdamParams {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

impl Default for AdamParams {
    fn default() -> Self {
        AdamParams::with_lr(1e-3)
    }
}

impl AdamScalar {
    /// Applies one Adam step; returns the parameter *delta* (to subtract is
    /// already folded in: add the returned value to the parameter).
    ///
    /// `t` is the 1-based step count for bias correction.
    pub fn step(&mut self, grad: f64, t: u64, p: &AdamParams) -> f64 {
        self.m = p.beta1 * self.m + (1.0 - p.beta1) * grad;
        self.v = p.beta2 * self.v + (1.0 - p.beta2) * grad * grad;
        let m_hat = self.m / (1.0 - p.beta1.powi(t as i32));
        let v_hat = self.v / (1.0 - p.beta2.powi(t as i32));
        -p.lr * m_hat / (v_hat.sqrt() + p.eps)
    }
}

/// Adam state over a fixed-size parameter vector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdamVector {
    state: Vec<AdamScalar>,
    t: u64,
}

impl AdamVector {
    /// Creates state for `n` parameters.
    pub fn new(n: usize) -> Self {
        AdamVector {
            state: vec![AdamScalar::default(); n],
            t: 0,
        }
    }

    /// Number of tracked parameters.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Returns `true` when tracking zero parameters.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Grows the state to `n` parameters (new entries start cold).
    pub fn grow(&mut self, n: usize) {
        if n > self.state.len() {
            self.state.resize(n, AdamScalar::default());
        }
    }

    /// Applies one step over `grads`, writing deltas through `apply`.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` exceeds the tracked parameter count.
    pub fn step(
        &mut self,
        grads: &[(usize, f64)],
        p: &AdamParams,
        mut apply: impl FnMut(usize, f64),
    ) {
        self.t += 1;
        for &(idx, g) in grads {
            assert!(idx < self.state.len(), "parameter index out of range");
            let delta = self.state[idx].step(g, self.t, p);
            apply(idx, delta);
        }
    }

    /// Resets moments to zero, keeping the size.
    pub fn reset(&mut self) {
        for s in &mut self.state {
            *s = AdamScalar::default();
        }
        self.t = 0;
    }

    /// Resets to exactly the state of `AdamVector::new(n)`: `n` cold
    /// scalars, step count zero. Lets a long-lived vector be recycled
    /// across optimizer invocations without reallocating growth headroom.
    pub fn reset_to(&mut self, n: usize) {
        self.state.clear();
        self.state.resize(n, AdamScalar::default());
        self.t = 0;
    }

    /// The 1-based step count (number of [`AdamVector::step`] calls).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Per-parameter scalar states, in parameter order (snapshot
    /// serialization).
    pub fn scalars(&self) -> &[AdamScalar] {
        &self.state
    }

    /// Rebuilds a vector from a step count and per-parameter states, the
    /// inverse of [`AdamVector::step_count`] + [`AdamVector::scalars`]
    /// (snapshot deserialization).
    pub fn from_parts(t: u64, state: Vec<AdamScalar>) -> Self {
        AdamVector { state, t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_descends_quadratic() {
        // Minimize f(x) = (x-3)² from x = 0.
        let mut x = 0.0;
        let mut st = AdamScalar::default();
        let p = AdamParams::with_lr(0.1);
        for t in 1..=500 {
            let g = 2.0 * (x - 3.0);
            x += st.step(g, t, &p);
        }
        assert!((x - 3.0).abs() < 0.05, "converged to {x}");
    }

    #[test]
    fn first_step_is_lr_sized() {
        let mut st = AdamScalar::default();
        let p = AdamParams::with_lr(0.01);
        let d = st.step(5.0, 1, &p);
        // Bias-corrected first step ≈ −lr · sign(grad).
        assert!((d + 0.01).abs() < 1e-6);
    }

    #[test]
    fn vector_state_grows_cold() {
        let mut v = AdamVector::new(2);
        v.grow(4);
        assert_eq!(v.len(), 4);
        let mut deltas = [0.0; 4];
        v.step(&[(3, 1.0)], &AdamParams::default(), |i, d| deltas[i] = d);
        assert!(deltas[3] < 0.0);
        assert_eq!(deltas[0], 0.0);
    }

    #[test]
    fn reset_clears_momentum() {
        let mut v = AdamVector::new(1);
        let p = AdamParams::default();
        v.step(&[(0, 1.0)], &p, |_, _| {});
        let before = v.clone();
        v.reset();
        assert_ne!(before, v);
        assert_eq!(v, AdamVector::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let mut v = AdamVector::new(1);
        v.step(&[(5, 1.0)], &AdamParams::default(), |_, _| {});
    }

    #[test]
    fn from_parts_round_trips_bitwise() {
        let mut v = AdamVector::new(3);
        let p = AdamParams::default();
        v.step(&[(0, 1.0), (2, -0.5)], &p, |_, _| {});
        v.step(&[(1, 0.25)], &p, |_, _| {});
        let rebuilt = AdamVector::from_parts(
            v.step_count(),
            v.scalars()
                .iter()
                .map(|s| {
                    let (m, mo) = s.moments();
                    AdamScalar::from_moments(m, mo)
                })
                .collect(),
        );
        assert_eq!(rebuilt, v);
        assert_eq!(rebuilt.step_count(), 2);
    }

    #[test]
    fn reset_to_matches_new() {
        let mut v = AdamVector::new(2);
        v.step(&[(0, 1.0)], &AdamParams::default(), |_, _| {});
        v.grow(10);
        v.reset_to(5);
        assert_eq!(v, AdamVector::new(5));
        assert_eq!(v.step_count(), 0);
    }
}
