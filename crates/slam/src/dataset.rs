//! RGB-D dataset synthesis.
//!
//! A [`Dataset`] is an RGB-D sequence with ground-truth poses, rendered from
//! a procedural [`SyntheticWorld`] along a synthetic trajectory — the
//! substitute for Replica / TUM RGB-D (DESIGN.md §2). Reference frames are
//! rendered with the dense tile-based pipeline from the ground-truth
//! Gaussians, so the SLAM system sees exactly the kind of imagery (textured
//! walls, occlusion boundaries, flat regions) its samplers key on.

use splatonic_math::{Image, Pose, Vec3};
use splatonic_render::prelude::*;
use splatonic_scene::{
    Camera, Frame, GaussianScene, Intrinsics, SyntheticWorld, Trajectory, WorldBuilder, WorldStyle,
};

/// Dataset generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of frames.
    pub frames: usize,
    /// Gaussian spacing of the ground-truth world (meters).
    pub spacing: f64,
    /// Horizontal field of view (radians).
    pub fov: f64,
    /// Number of furniture boxes.
    pub furniture: usize,
    /// Sensor depth-dropout threshold: a pixel reports valid depth only
    /// when its coverage `1 − Γ_final` exceeds this value; otherwise the
    /// simulated sensor emits `0.0` (invalid). Default `0.9` — a real depth
    /// camera only returns range on solidly covered surfaces. Deliberately
    /// stricter than the mapping-side unseen test (`Γ_final > 0.5`, see
    /// `mapping::densify_unseen`): pixels in the `0.5..=0.9` coverage band
    /// have no sensor depth yet are *not* treated as unseen, so
    /// densification does not chase sensor dropouts at grazing incidence.
    /// Bit-exactness: changes the generated frames, so it is
    /// result-affecting for any run whose dataset it shapes.
    pub depth_dropout_coverage: f64,
}

impl DatasetConfig {
    /// A laptop-scale configuration used by tests and quick examples.
    pub fn small() -> Self {
        DatasetConfig {
            width: 96,
            height: 72,
            frames: 24,
            spacing: 0.22,
            fov: 1.25,
            furniture: 3,
            depth_dropout_coverage: 0.9,
        }
    }

    /// The default evaluation configuration used by the figure harness.
    pub fn evaluation() -> Self {
        DatasetConfig {
            width: 128,
            height: 96,
            frames: 40,
            spacing: 0.18,
            fov: 1.25,
            furniture: 4,
            depth_dropout_coverage: 0.9,
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig::evaluation()
    }
}

/// An RGB-D sequence with ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Sequence name (e.g. `room0`).
    pub name: String,
    /// RGB-D frames.
    pub frames: Vec<Frame>,
    /// Ground-truth world-to-camera poses, one per frame.
    pub gt_poses: Vec<Pose>,
    /// Camera intrinsics (fixed across the sequence).
    pub intrinsics: Intrinsics,
    /// The ground-truth world the frames were rendered from.
    pub world: SyntheticWorld,
}

impl Dataset {
    /// Generates a Replica-like sequence (smooth indoor motion).
    pub fn replica_like(name: &str, seed: u64, config: DatasetConfig) -> Dataset {
        Dataset::generate(name, seed, WorldStyle::ReplicaLike, config)
    }

    /// Generates a TUM-like sequence (fast camera motion).
    pub fn tum_like(name: &str, seed: u64, config: DatasetConfig) -> Dataset {
        Dataset::generate(name, seed, WorldStyle::TumLike, config)
    }

    /// Generates a sequence of the given style.
    pub fn generate(name: &str, seed: u64, style: WorldStyle, config: DatasetConfig) -> Dataset {
        let world = WorldBuilder::new(seed)
            .style(style)
            .gaussian_spacing(config.spacing)
            .furniture(config.furniture)
            .build();
        let trajectory =
            Trajectory::generate(style.trajectory_kind(), world.extent, config.frames, seed);
        let intrinsics = Intrinsics::with_fov(config.width, config.height, config.fov);
        let frames = render_sequence(
            &world.scene,
            trajectory.poses(),
            intrinsics,
            config.depth_dropout_coverage,
        );
        Dataset {
            name: name.to_string(),
            frames,
            gt_poses: trajectory.poses().to_vec(),
            intrinsics,
            world,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Renders reference RGB-D frames from a Gaussian scene along poses.
/// `depth_dropout_coverage` is the sensor dropout threshold (see
/// [`DatasetConfig::depth_dropout_coverage`]).
pub fn render_sequence(
    scene: &GaussianScene,
    poses: &[Pose],
    intrinsics: Intrinsics,
    depth_dropout_coverage: f64,
) -> Vec<Frame> {
    let cfg = RenderConfig::default();
    let pixels = PixelSet::dense(intrinsics.width, intrinsics.height);
    poses
        .iter()
        .enumerate()
        .map(|(i, pose)| {
            let cam = Camera::new(intrinsics, *pose);
            let out = render_forward(scene, &cam, &pixels, Pipeline::TileBased, &cfg);
            frame_from_forward(&out, &pixels, i, depth_dropout_coverage)
        })
        .collect()
}

/// Packs a dense forward result into a [`Frame`], applying the sensor
/// depth-dropout threshold (see [`DatasetConfig::depth_dropout_coverage`]).
pub fn frame_from_forward(
    out: &splatonic_render::ForwardResult,
    pixels: &PixelSet,
    index: usize,
    depth_dropout_coverage: f64,
) -> Frame {
    let w = pixels.width();
    let h = pixels.height();
    let mut color = Image::filled(w, h, Vec3::ZERO);
    let mut depth = Image::filled(w, h, 0.0);
    for (i, p) in pixels.iter_all().enumerate() {
        color[(p.x as usize, p.y as usize)] = out.color[i];
        // The sensor reports the renderer's expected depth (Σ Γ_i α_i z_i),
        // with a dropout where the pixel is not solidly covered — keeping
        // the sensor model consistent with what the SLAM losses compare
        // against avoids irreducible depth residuals at grazing pixels.
        let coverage = 1.0 - out.final_transmittance[i];
        depth[(p.x as usize, p.y as usize)] = if coverage > depth_dropout_coverage {
            out.depth[i]
        } else {
            0.0 // insufficient coverage → invalid depth (sensor dropout)
        };
    }
    Frame::new(color, depth, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatasetConfig {
        DatasetConfig {
            width: 48,
            height: 36,
            frames: 4,
            spacing: 0.45,
            fov: 1.25,
            furniture: 1,
            depth_dropout_coverage: 0.9,
        }
    }

    #[test]
    fn dataset_shapes() {
        let d = Dataset::replica_like("t", 1, tiny());
        assert_eq!(d.len(), 4);
        assert_eq!(d.gt_poses.len(), 4);
        assert_eq!(d.frames[0].width(), 48);
        assert_eq!(d.name, "t");
    }

    #[test]
    fn frames_have_content_and_depth() {
        let d = Dataset::replica_like("t", 2, tiny());
        for f in &d.frames {
            // Most pixels should see the room (positive depth, some color).
            assert!(f.depth_coverage() > 0.6, "coverage {}", f.depth_coverage());
            let mean_lum: f64 =
                f.luminance().as_slice().iter().sum::<f64>() / f.luminance().len() as f64;
            assert!(mean_lum > 0.05, "frame too dark: {mean_lum}");
        }
    }

    #[test]
    fn depth_is_metric() {
        // Depths must be positive and bounded by the room diagonal.
        let d = Dataset::replica_like("t", 3, tiny());
        let diag = d.world.extent.norm();
        for f in &d.frames {
            for &z in f.depth.as_slice() {
                assert!(z >= 0.0);
                assert!(z < diag + 1.0, "depth {z} exceeds room diagonal {diag}");
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = Dataset::replica_like("t", 5, tiny());
        let b = Dataset::replica_like("t", 5, tiny());
        assert_eq!(a.frames[0].color, b.frames[0].color);
        assert_eq!(a.gt_poses, b.gt_poses);
    }

    #[test]
    fn dropout_threshold_is_configurable() {
        let strict = Dataset::replica_like("t", 11, tiny());
        let lax = Dataset::replica_like(
            "t",
            11,
            DatasetConfig {
                depth_dropout_coverage: 0.0,
                ..tiny()
            },
        );
        // A lower threshold can only add valid depth, never remove it.
        let valid = |d: &Dataset| {
            d.frames
                .iter()
                .flat_map(|f| f.depth.as_slice())
                .filter(|&&z| z > 0.0)
                .count()
        };
        assert!(valid(&lax) > valid(&strict));
        for (fs, fl) in strict.frames.iter().zip(lax.frames.iter()) {
            for (&zs, &zl) in fs.depth.as_slice().iter().zip(fl.depth.as_slice()) {
                if zs > 0.0 {
                    assert_eq!(zs.to_bits(), zl.to_bits());
                }
            }
        }
        // Color is untouched by the depth sensor model.
        assert_eq!(strict.frames[0].color, lax.frames[0].color);
    }

    #[test]
    fn tum_like_differs_from_replica_like() {
        let a = Dataset::replica_like("t", 7, tiny());
        let b = Dataset::tum_like("t", 7, tiny());
        assert_ne!(a.frames[0].color, b.frames[0].color);
    }
}
