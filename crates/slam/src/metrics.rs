//! Evaluation metrics: absolute trajectory error and PSNR (paper Sec. VI).

use crate::dataset::Dataset;
use splatonic_math::{Image, Mat3, Pose, Vec3};
use splatonic_render::{render_forward, Pipeline, PixelSet, RenderConfig};
use splatonic_scene::{Camera, ColorImage, Frame, GaussianScene, Intrinsics};

/// Umeyama alignment (rotation + translation, no scale) of `est` onto `gt`
/// camera centers. Returns the aligning pose `T` such that `T(est) ≈ gt`.
///
/// Fewer than 3 camera centers underdetermine the rotation, so short
/// trajectories fall back to an *anchor-relative* alignment: identity
/// rotation plus the translation that maps the first estimated center onto
/// the first ground-truth center. This matches the SLAM convention that the
/// first pose is the given anchor — an estimate expressed in a shifted
/// world frame aligns to zero error instead of reporting the raw offset the
/// old identity fallback produced.
pub fn align_trajectories(est: &[Pose], gt: &[Pose]) -> Pose {
    let n = est.len().min(gt.len());
    if n == 0 {
        return Pose::identity();
    }
    if n < 3 {
        let t = gt[0].camera_center() - est[0].camera_center();
        return Pose::new(Mat3::identity(), t);
    }
    let est_c: Vec<Vec3> = est[..n].iter().map(Pose::camera_center).collect();
    let gt_c: Vec<Vec3> = gt[..n].iter().map(Pose::camera_center).collect();
    let mean = |v: &[Vec3]| v.iter().fold(Vec3::ZERO, |a, &b| a + b) / v.len() as f64;
    let me = mean(&est_c);
    let mg = mean(&gt_c);
    // Cross-covariance H = Σ (gt−mg)(est−me)ᵀ.
    let mut h = Mat3::zero();
    for i in 0..n {
        h = h + Mat3::outer(gt_c[i] - mg, est_c[i] - me);
    }
    let r = polar_rotation(&h);
    let t = mg - r * me;
    Pose::new(r, t)
}

/// Nearest rotation matrix to `m` via iterative polar decomposition
/// (Higham's Newton iteration), with a determinant fix for reflections.
fn polar_rotation(m: &Mat3) -> Mat3 {
    // Guard: a near-zero matrix (degenerate trajectories) maps to identity.
    let frob: f64 = m.m.iter().map(|v| v * v).sum::<f64>().sqrt();
    if frob < 1e-12 {
        return Mat3::identity();
    }
    let mut q = m.scale(1.0 / frob);
    for _ in 0..60 {
        let q_inv_t = match q.inverse() {
            Some(inv) => inv.transpose(),
            None => break,
        };
        let next = (q + q_inv_t).scale(0.5);
        let delta: f64 = next
            .m
            .iter()
            .zip(q.m.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        q = next;
        if delta < 1e-30 {
            break;
        }
    }
    if q.det() < 0.0 {
        // Reflection: flip the axis of least significance (column 2 is as
        // good as any for the degenerate planar case).
        let c0 = q.col(0);
        let c1 = q.col(1);
        let c2 = q.col(2) * -1.0;
        q = Mat3::from_cols(c0, c1, c2);
    }
    q
}

/// Absolute trajectory error (RMSE of aligned camera-center distances), in
/// centimeters — the paper's tracking-accuracy metric.
///
/// Trajectories of 3+ poses are Umeyama-aligned (rotation + translation, no
/// scale) before the RMSE; 1–2 poses use the anchor-relative fallback of
/// [`align_trajectories`], so the early-trajectory values reported in
/// per-frame telemetry (`ate_so_far_cm`) follow the same anchored
/// convention as the full-run number instead of mixing in a global offset.
///
/// # Panics
///
/// Panics if the trajectories have different lengths or are empty.
pub fn ate_rmse_cm(est: &[Pose], gt: &[Pose]) -> f64 {
    assert_eq!(est.len(), gt.len(), "trajectory lengths must match");
    assert!(!est.is_empty(), "trajectories must be non-empty");
    let align = align_trajectories(est, gt);
    let mut sum_sq = 0.0;
    for (e, g) in est.iter().zip(gt.iter()) {
        let d = align.transform(e.camera_center()) - g.camera_center();
        sum_sq += d.norm_sq();
    }
    (sum_sq / est.len() as f64).sqrt() * 100.0
}

/// Peak signal-to-noise ratio between two color images, in dB — the paper's
/// reconstruction-quality metric. Peak value is 1.0.
///
/// Returns `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if the image dimensions differ or the images are empty.
pub fn psnr_db(rendered: &ColorImage, reference: &ColorImage) -> f64 {
    assert_eq!(
        (rendered.width(), rendered.height()),
        (reference.width(), reference.height()),
        "image dimensions must match"
    );
    assert!(!rendered.is_empty(), "images must be non-empty");
    let mut sum_sq = 0.0;
    for (a, b) in rendered.as_slice().iter().zip(reference.as_slice().iter()) {
        let d = *a - *b;
        sum_sq += d.norm_sq();
    }
    let mse = sum_sq / (rendered.len() * 3) as f64;
    if mse <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (1.0 / mse).log10()
}

/// PSNR (dB) of `scene` rendered densely (tile-based pipeline) at `pose`
/// against `frame`'s color image.
///
/// This is the per-frame reconstruction-quality probe behind the run
/// report's PSNR column; it is public so standalone pipelines (the bench
/// plan runner's `eval_psnr` step, `.ply`-imported scenes) evaluate with
/// exactly the arithmetic `SlamSystem::finalize` uses.
pub fn scene_frame_psnr(
    scene: &GaussianScene,
    intrinsics: Intrinsics,
    render_cfg: &RenderConfig,
    frame: &Frame,
    pose: Pose,
) -> f64 {
    let pixels = PixelSet::dense(intrinsics.width, intrinsics.height);
    let cam = Camera::new(intrinsics, pose);
    let out = render_forward(scene, &cam, &pixels, Pipeline::TileBased, render_cfg);
    let mut img = Image::filled(intrinsics.width, intrinsics.height, Vec3::ZERO);
    for (i, p) in pixels.iter_all().enumerate() {
        img[(p.x as usize, p.y as usize)] = out.color[i];
    }
    psnr_db(&img, &frame.color)
}

/// Mean [`scene_frame_psnr`] over every `stride`-th frame of `dataset`,
/// rendered at the corresponding `est_poses` entry. Non-finite per-frame
/// values (identical images) are excluded from the mean; returns `0.0`
/// when no frame produced a finite value.
pub fn evaluate_scene_psnr(
    scene: &GaussianScene,
    intrinsics: Intrinsics,
    render_cfg: &RenderConfig,
    dataset: &Dataset,
    est_poses: &[Pose],
    stride: usize,
) -> f64 {
    let mut total = 0.0;
    let mut count = 0;
    for t in (0..dataset.len()).step_by(stride.max(1)) {
        let v = scene_frame_psnr(
            scene,
            intrinsics,
            render_cfg,
            &dataset.frames[t],
            est_poses[t],
        );
        if v.is_finite() {
            total += v;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatonic_math::Se3;

    fn make_traj(n: usize, offset: Vec3) -> Vec<Pose> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.1;
                Se3::new(
                    Vec3::new(t.cos(), 0.1 * t, t.sin()) + offset,
                    Vec3::new(0.0, t * 0.05, 0.0),
                )
                .exp()
            })
            .collect()
    }

    #[test]
    fn identical_trajectories_zero_ate() {
        let t = make_traj(20, Vec3::ZERO);
        assert!(ate_rmse_cm(&t, &t) < 1e-6);
    }

    #[test]
    fn ate_invariant_under_rigid_transform() {
        let gt = make_traj(20, Vec3::ZERO);
        // Apply a global rigid transform to the estimate; ATE must stay ~0.
        let rig = Se3::new(Vec3::new(1.0, -2.0, 0.5), Vec3::new(0.2, 0.4, -0.1)).exp();
        let est: Vec<Pose> = gt.iter().map(|p| p.compose(&rig)).collect();
        let ate = ate_rmse_cm(&est, &gt);
        assert!(ate < 1e-4, "ATE after rigid transform: {ate}");
    }

    #[test]
    fn ate_detects_offset() {
        let gt = make_traj(20, Vec3::ZERO);
        // Non-rigid error: perturb half the poses.
        let mut est = gt.clone();
        for p in est.iter_mut().take(10) {
            p.translation += Vec3::new(0.02, 0.0, 0.0);
        }
        let ate = ate_rmse_cm(&est, &gt);
        assert!(ate > 0.2, "perturbation must show up: {ate}");
        assert!(ate < 3.0);
    }

    #[test]
    fn alignment_recovers_transform() {
        let gt = make_traj(30, Vec3::ZERO);
        let rig = Se3::new(Vec3::new(0.3, 0.1, -0.2), Vec3::new(0.0, 0.7, 0.0)).exp();
        let est: Vec<Pose> = gt.iter().map(|p| p.compose(&rig)).collect();
        let align = align_trajectories(&est, &gt);
        for (e, g) in est.iter().zip(gt.iter()) {
            let d = align.transform(e.camera_center()) - g.camera_center();
            assert!(d.norm() < 1e-6);
        }
    }

    #[test]
    fn polar_rotation_of_rotation_is_identity_map() {
        let r = Se3::new(Vec3::ZERO, Vec3::new(0.4, -0.2, 0.8))
            .exp()
            .rotation;
        let q = polar_rotation(&r);
        for i in 0..9 {
            assert!((q.m[i] - r.m[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn polar_rotation_handles_zero() {
        let q = polar_rotation(&Mat3::zero());
        assert!((q.det() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn short_trajectory_alignment_is_anchor_relative() {
        // satellite of PR 5: with <3 poses the old code returned identity
        // alignment, so an estimate expressed in a shifted world frame
        // reported the raw frame offset as "error". The anchored fallback
        // removes the offset via the first pose.
        let gt = make_traj(2, Vec3::ZERO);
        // Shift every camera center by a constant world offset d:
        // c = −Rᵀt, so t ← t − R·d moves c to c + d.
        let d = Vec3::new(1.5, -0.4, 2.0);
        let est: Vec<Pose> = gt
            .iter()
            .map(|p| {
                let mut q = *p;
                q.translation -= q.rotation * d;
                q
            })
            .collect();
        let ate = ate_rmse_cm(&est, &gt);
        assert!(ate < 1e-9, "pure world-frame shift must align out: {ate}");
        // A genuine relative error still shows up.
        let mut bad = gt.clone();
        bad[1].translation += Vec3::new(0.05, 0.0, 0.0);
        assert!(ate_rmse_cm(&bad, &gt) > 1.0);
        // Single-pose trajectories anchor to exactly zero.
        assert!(ate_rmse_cm(&gt[..1], &gt[..1]) < 1e-12);
        // In-system convention: est[0] == gt[0] (the anchor is given), so
        // the fallback translation is zero and frame-1 values are unchanged
        // versus the old identity fallback.
        let mut est2 = vec![gt[0], gt[1]];
        est2[1].translation += Vec3::new(0.01, 0.0, 0.0);
        let anchored = ate_rmse_cm(&est2, &gt[..2]);
        assert!(anchored > 0.0 && anchored.is_finite());
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_panic() {
        let a = make_traj(3, Vec3::ZERO);
        let b = make_traj(4, Vec3::ZERO);
        let _ = ate_rmse_cm(&a, &b);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = Image::filled(4, 4, Vec3::splat(0.5));
        assert!(psnr_db(&img, &img).is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        let a = Image::filled(4, 4, Vec3::splat(0.5));
        let b = Image::filled(4, 4, Vec3::splat(0.6));
        // MSE = 0.01 → PSNR = 20 dB.
        assert!((psnr_db(&a, &b) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn psnr_orders_by_quality() {
        let reference = Image::filled(4, 4, Vec3::splat(0.5));
        let close = Image::filled(4, 4, Vec3::splat(0.52));
        let far = Image::filled(4, 4, Vec3::splat(0.8));
        assert!(psnr_db(&close, &reference) > psnr_db(&far, &reference));
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn psnr_dimension_mismatch_panics() {
        let a = Image::filled(4, 4, Vec3::ZERO);
        let b = Image::filled(3, 4, Vec3::ZERO);
        let _ = psnr_db(&a, &b);
    }
}
