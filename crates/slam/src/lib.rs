//! The 3DGS-SLAM layer: tracking, mapping, and evaluation.
//!
//! Implements the SLAM structure of paper Sec. II-A on top of the
//! differentiable renderer:
//!
//! * [`tracking`] — per-frame camera-pose optimization (`S_t` iterations of
//!   Adam on se(3), pixels chosen by a [`splatonic_render::SamplingStrategy`]),
//! * [`mapping`] — keyframe-window scene refinement (`S_m` iterations of
//!   Adam on Gaussian parameters) with unseen-region densification,
//! * [`algorithm`] — behavioral presets for the four evaluated 3DGS-SLAM
//!   algorithms (SplaTAM, MonoGS, GS-SLAM, FlashSLAM),
//! * [`system`] — the end-to-end [`system::SlamSystem`] loop,
//! * [`dataset`] — renders synthetic worlds into RGB-D sequences,
//! * [`metrics`] — ATE (Umeyama-aligned RMSE) and PSNR,
//! * [`adam`] — the Adam optimizer used by both processes,
//! * [`snapshot`] — versioned, bit-exact checkpoint/resume wire format
//!   (DESIGN.md §12),
//! * [`serve`] — the multi-session serving layer: a [`serve::SessionManager`]
//!   that interleaves K independent sessions fairly, with bounded ingest
//!   queues and snapshot-backed eviction/resume (DESIGN.md §15).
//!
//! # Examples
//!
//! ```no_run
//! use splatonic_slam::prelude::*;
//!
//! let dataset = Dataset::replica_like("room0", 101, DatasetConfig::small());
//! let mut system = SlamSystem::new(SlamConfig::default(), dataset.intrinsics);
//! let result = system.run(&dataset);
//! println!("ATE: {:.2} cm", result.ate_cm);
//! ```

#![warn(missing_docs)]

pub mod adam;
pub mod algorithm;
pub mod assets;
pub mod dataset;
pub mod mapping;
pub mod metrics;
pub mod serve;
pub mod snapshot;
pub mod system;
pub mod tracking;

pub use algorithm::{AlgorithmConfig, AlgorithmPreset};
pub use dataset::{Dataset, DatasetConfig};
pub use metrics::{ate_rmse_cm, evaluate_scene_psnr, psnr_db, scene_frame_psnr};
pub use serve::{ServeConfig, ServeError, SessionManager, SessionOutcome, StepReport};
pub use snapshot::{Snapshot, SnapshotError};
pub use system::{SlamConfig, SlamResult, SlamSystem};

/// Convenience prelude re-exporting the common entry points.
pub mod prelude {
    pub use crate::algorithm::{AlgorithmConfig, AlgorithmPreset};
    pub use crate::dataset::{Dataset, DatasetConfig};
    pub use crate::metrics::{ate_rmse_cm, evaluate_scene_psnr, psnr_db, scene_frame_psnr};
    pub use crate::snapshot::{Snapshot, SnapshotError};
    pub use crate::system::{SlamConfig, SlamResult, SlamSystem};
    pub use splatonic_render::{Pipeline, SamplingStrategy};
}
