//! Per-frame camera-pose tracking (paper Sec. II-A).
//!
//! Tracking fixes the Gaussian scene and optimizes a single camera pose by
//! `S_t` iterations of render → loss → backward → Adam-on-se(3). Pixels are
//! chosen by the configured [`SamplingStrategy`] each iteration (re-sampled
//! per iteration, which is what gives random sampling its global coverage
//! over the optimization).
//!
//! The projection cache (`splatonic_render::projcache`) interacts with this
//! loop as follows: within one iteration the forward pass projects the scene
//! and the backward pass hits the cache (same scene revision, same pose).
//! The Adam step then moves the pose, so the next iteration's forward is a
//! cache *invalidation* (pose-only delta) and reprojects. Net effect: one
//! projection per iteration instead of two, with bit-identical results.

use crate::adam::{AdamParams, AdamVector};
use crate::algorithm::AlgorithmConfig;
use splatonic_math::{Image, Pose, Se3, Vec3};
use splatonic_render::sampling::{tracking_plan, SamplingPlan};
use splatonic_render::{
    loss, render_backward, render_forward, Pipeline, PixelSet, RenderConfig, RenderTrace,
    SamplingStrategy,
};
use splatonic_scene::{Camera, Frame, GaussianScene, Intrinsics};
use splatonic_telemetry::Telemetry;

/// Output of tracking one frame.
#[derive(Debug, Clone)]
pub struct TrackerOutput {
    /// Estimated world-to-camera pose.
    pub pose: Pose,
    /// Aggregated workload trace over all iterations.
    pub trace: RenderTrace,
    /// Iterations executed.
    pub iters: usize,
    /// Loss at the returned pose.
    pub final_loss: f64,
    /// Pixels rendered per iteration (mean).
    pub pixels_per_iter: f64,
    /// Exact total pixels rendered across all optimization iterations
    /// (excludes the final best-of evaluation render, matching what the
    /// trace accounts). Unlike `pixels_per_iter × iters`, this stays exact
    /// when per-iteration pixel counts vary (e.g. loss-guided resampling).
    pub sampled_pixels: usize,
}

/// Downsamples a frame by an integer factor (box filter), for the
/// "Low-Res." baseline.
pub fn downsample_frame(frame: &Frame, factor: usize) -> Frame {
    let channel = |sel: fn(&Vec3) -> f64| -> Image<f64> {
        splatonic_math::image::downsample(&frame.color.map(sel), factor)
    };
    let r = channel(|c| c.x);
    let g = channel(|c| c.y);
    let b = channel(|c| c.z);
    let w = r.width();
    let h = r.height();
    let color = Image::from_fn(w, h, |x, y| Vec3::new(r[(x, y)], g[(x, y)], b[(x, y)]));
    // Depth uses the same box filter; zero (invalid) pixels bias blocks
    // toward zero, which conservatively weakens the depth term there.
    let depth = splatonic_math::image::downsample(&frame.depth, factor);
    Frame::new(color, depth, frame.index)
}

/// Tracks one frame: optimizes the camera pose against `frame` with the
/// scene fixed.
#[allow(clippy::too_many_arguments)]
pub fn track_frame(
    scene: &GaussianScene,
    intrinsics: Intrinsics,
    init_pose: Pose,
    frame: &Frame,
    strategy: SamplingStrategy,
    pipeline: Pipeline,
    algo: &AlgorithmConfig,
    render_cfg: &RenderConfig,
    seed: u64,
) -> TrackerOutput {
    track_frame_with_telemetry(
        scene,
        intrinsics,
        init_pose,
        frame,
        strategy,
        pipeline,
        algo,
        render_cfg,
        seed,
        &Telemetry::disabled(),
    )
}

/// [`track_frame`] with span instrumentation: each iteration's render passes
/// are timed under `forward` / `backward` (nested under whatever span the
/// caller holds, e.g. `tracking`). A disabled handle adds no overhead.
#[allow(clippy::too_many_arguments)]
pub fn track_frame_with_telemetry(
    scene: &GaussianScene,
    intrinsics: Intrinsics,
    init_pose: Pose,
    frame: &Frame,
    strategy: SamplingStrategy,
    pipeline: Pipeline,
    algo: &AlgorithmConfig,
    render_cfg: &RenderConfig,
    seed: u64,
    telemetry: &Telemetry,
) -> TrackerOutput {
    let mut pose = init_pose;
    let mut best_pose = init_pose;
    let mut best_loss = f64::INFINITY;
    let mut adam = AdamVector::new(6);
    let adam_params = AdamParams::with_lr(algo.pose_lr);
    let mut trace = RenderTrace::new();
    let mut pixels_total = 0usize;
    // Loss-guided sampling state: per-16×16-tile loss from the previous
    // iteration's rendered tiles.
    let mut tile_loss: Option<Vec<f64>> = None;
    // The pixel set is drawn once per frame, so losses are comparable
    // across iterations and the best-pose selection is meaningful. Only the
    // loss-guided baseline re-samples per iteration (it reacts to the
    // previous iteration's loss by construction).
    let resample_per_iter = matches!(strategy, SamplingStrategy::LossGuidedTiles { .. });
    let mut current_plan = tracking_plan(strategy, frame, seed, tile_loss.as_deref());
    // The Low-Res. baseline renders a downscaled dense image.
    let lowres: Option<(Intrinsics, Frame)> = match current_plan {
        SamplingPlan::LowRes { factor } => {
            let small = intrinsics.downscaled(factor);
            Some((small, downsample_frame(frame, factor)))
        }
        _ => None,
    };

    for it in 0..algo.tracking_iters {
        if resample_per_iter && it > 0 {
            current_plan = tracking_plan(
                strategy,
                frame,
                seed ^ (it as u64).wrapping_mul(0x9E37),
                tile_loss.as_deref(),
            );
        }
        let (cam, pixels, reference): (Camera, PixelSet, &Frame) = match (&current_plan, &lowres) {
            (SamplingPlan::Pixels(p), _) => (Camera::new(intrinsics, pose), p.clone(), frame),
            (SamplingPlan::LowRes { .. }, Some((small, small_frame))) => (
                Camera::new(*small, pose),
                PixelSet::dense(small.width, small.height),
                small_frame,
            ),
            (SamplingPlan::LowRes { .. }, None) => unreachable!("lowres prepared above"),
        };
        pixels_total += pixels.len();
        let out = {
            let _span = telemetry.span("forward");
            render_forward(scene, &cam, &pixels, pipeline, render_cfg)
        };
        let l = loss::evaluate_loss(&out, reference, &pixels, &algo.loss);
        if l.value < best_loss {
            best_loss = l.value;
            best_pose = pose;
        }
        if resample_per_iter {
            tile_loss = Some(update_tile_losses(
                tile_loss.take(),
                &out,
                reference,
                &pixels,
            ));
        }
        let (_, pose_grad, bwd_trace) = {
            let _span = telemetry.span("backward");
            render_backward(scene, &cam, &pixels, &out, &l.grads, pipeline, render_cfg)
        };
        trace.merge(&out.trace);
        trace.merge(&bwd_trace);
        // A zero gradient means the render saw no Gaussians (the pose left
        // the reconstructed region); stepping on stale momentum would only
        // coast further away, so stop and fall back to the best pose.
        if pose_grad.xi.norm() == 0.0 {
            break;
        }
        // Adam step on the 6 tangent coordinates.
        let g = pose_grad.xi.to_array();
        let mut delta = [0.0; 6];
        adam.step(
            &g.iter()
                .enumerate()
                .map(|(i, &v)| (i, v))
                .collect::<Vec<_>>(),
            &adam_params,
            |i, d| delta[i] = d,
        );
        pose = pose.retract(Se3::from_array(delta));
    }
    // Evaluate the final pose on the same pixel set so the best-of
    // selection includes it.
    {
        let (cam, pixels, reference): (Camera, PixelSet, &Frame) = match (&current_plan, &lowres) {
            (SamplingPlan::Pixels(p), _) => (Camera::new(intrinsics, pose), p.clone(), frame),
            (SamplingPlan::LowRes { .. }, Some((small, small_frame))) => (
                Camera::new(*small, pose),
                PixelSet::dense(small.width, small.height),
                small_frame,
            ),
            (SamplingPlan::LowRes { .. }, None) => unreachable!("lowres prepared above"),
        };
        let out = render_forward(scene, &cam, &pixels, pipeline, render_cfg);
        let l = loss::evaluate_loss(&out, reference, &pixels, &algo.loss);
        if l.value < best_loss {
            best_loss = l.value;
            best_pose = pose;
        }
    }
    TrackerOutput {
        pose: best_pose,
        trace,
        iters: algo.tracking_iters,
        final_loss: best_loss,
        pixels_per_iter: pixels_total as f64 / algo.tracking_iters.max(1) as f64,
        sampled_pixels: pixels_total,
    }
}

/// Updates the per-16×16-tile loss map from the tiles rendered this
/// iteration (GauSPU-style reactive sampling keys on previous results).
fn update_tile_losses(
    prev: Option<Vec<f64>>,
    out: &splatonic_render::ForwardResult,
    reference: &Frame,
    pixels: &PixelSet,
) -> Vec<f64> {
    const T: usize = 16;
    let tiles_x = pixels.width().div_ceil(T);
    let tiles_y = pixels.height().div_ceil(T);
    let mut losses = prev.unwrap_or_else(|| vec![0.0; tiles_x * tiles_y]);
    if losses.len() != tiles_x * tiles_y {
        losses = vec![0.0; tiles_x * tiles_y];
    }
    let mut sums = vec![0.0; tiles_x * tiles_y];
    let mut counts = vec![0u32; tiles_x * tiles_y];
    for (i, p) in pixels.iter_all().enumerate() {
        let t = (p.y as usize / T) * tiles_x + (p.x as usize / T);
        let r = out.color[i] - reference.color[(p.x as usize, p.y as usize)];
        sums[t] += r.abs().sum();
        counts[t] += 1;
    }
    for t in 0..losses.len() {
        if counts[t] > 0 {
            losses[t] = sums[t] / counts[t] as f64;
        }
    }
    losses
}

/// Constant-velocity pose initialization: extrapolates the motion between
/// the previous two world-to-camera poses.
pub fn constant_velocity_init(prev: Pose, prev_prev: Option<Pose>) -> Pose {
    match prev_prev {
        Some(pp) => {
            // Relative motion R = P_{t-1} ∘ P_{t-2}⁻¹; predict R ∘ P_{t-1}.
            let rel = prev.compose(&pp.inverse());
            rel.compose(&prev).orthonormalized()
        }
        None => prev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};
    use splatonic_render::SamplingStrategy;

    fn tiny_dataset() -> Dataset {
        Dataset::replica_like(
            "track-test",
            42,
            DatasetConfig {
                width: 64,
                height: 48,
                frames: 3,
                spacing: 0.3,
                fov: 1.25,
                furniture: 2,
                depth_dropout_coverage: 0.9,
            },
        )
    }

    #[test]
    fn tracking_improves_perturbed_pose() {
        // Realistic setup: track against a map seeded by back-projection
        // and refined by a short mapping pass (what the SLAM system does),
        // at evaluation resolution, with a perturbation well above the
        // pixel-sensitivity floor.
        let d = Dataset::replica_like(
            "track-test-hi",
            42,
            DatasetConfig {
                width: 128,
                height: 96,
                frames: 3,
                spacing: 0.25,
                fov: 1.25,
                furniture: 2,
                depth_dropout_coverage: 0.9,
            },
        );
        let mut scene =
            crate::mapping::seed_scene_from_frame(&d.frames[1], d.intrinsics, d.gt_poses[1], 1);
        let map_algo = AlgorithmConfig {
            mapping_iters: 15,
            ..AlgorithmConfig::default()
        };
        let kf = crate::mapping::Keyframe {
            frame: d.frames[1].clone(),
            pose: d.gt_poses[1],
        };
        let sampler = splatonic_render::MappingSampler::new(
            4,
            splatonic_render::sampling::MappingStrategy::Combined,
        );
        crate::mapping::map_scene(
            &mut scene,
            &[kf],
            d.intrinsics,
            &sampler,
            &map_algo,
            Pipeline::PixelBased,
            &RenderConfig::default(),
            3,
        );
        let gt = d.gt_poses[1];
        let init = gt.retract(Se3::new(
            Vec3::new(0.03, -0.02, 0.025),
            Vec3::new(0.01, -0.012, 0.008),
        ));
        let algo = AlgorithmConfig {
            tracking_iters: 40,
            ..AlgorithmConfig::default()
        };
        let out = track_frame(
            &scene,
            d.intrinsics,
            init,
            &d.frames[1],
            SamplingStrategy::RandomPerTile { tile: 8 },
            Pipeline::PixelBased,
            &algo,
            &RenderConfig::default(),
            7,
        );
        let err_before = init.translation_distance_to(&gt);
        let err_after = out.pose.translation_distance_to(&gt);
        assert!(
            err_after < err_before * 0.6,
            "tracking must substantially reduce the pose error: {err_before} -> {err_after}"
        );
    }

    #[test]
    fn tracking_with_correct_init_stays_put() {
        let d = tiny_dataset();
        let gt = d.gt_poses[1];
        let algo = AlgorithmConfig {
            tracking_iters: 8,
            ..AlgorithmConfig::default()
        };
        let out = track_frame(
            &d.world.scene,
            d.intrinsics,
            gt,
            &d.frames[1],
            SamplingStrategy::RandomPerTile { tile: 8 },
            Pipeline::PixelBased,
            &algo,
            &RenderConfig::default(),
            3,
        );
        assert!(
            out.pose.translation_distance_to(&gt) < 5e-3,
            "drift {}",
            out.pose.translation_distance_to(&gt)
        );
    }

    #[test]
    fn trace_accumulates_over_iterations() {
        let d = tiny_dataset();
        let algo = AlgorithmConfig {
            tracking_iters: 4,
            ..AlgorithmConfig::default()
        };
        // Start slightly off the ground truth so gradients are non-zero
        // and all iterations execute (a perfect pose has an exactly-zero
        // Huber gradient and tracking stops immediately).
        let init = d.gt_poses[1].retract(Se3::new(
            Vec3::new(0.01, 0.005, -0.008),
            Vec3::new(0.004, -0.003, 0.002),
        ));
        let out = track_frame(
            &d.world.scene,
            d.intrinsics,
            init,
            &d.frames[1],
            SamplingStrategy::RandomPerTile { tile: 16 },
            Pipeline::PixelBased,
            &algo,
            &RenderConfig::default(),
            3,
        );
        assert_eq!(out.iters, 4);
        assert!(out.trace.forward.pixels_shaded >= 4 * 12); // 64x48/16² = 12 tiles
        assert!(out.trace.backward.pairs_grad > 0);
        assert!(out.pixels_per_iter > 0.0);
        // The exact total matches what the trace accounted: the final
        // best-of evaluation render is excluded from both.
        assert_eq!(out.sampled_pixels as u64, out.trace.forward.pixels_shaded);
    }

    #[test]
    fn lowres_strategy_runs() {
        let d = tiny_dataset();
        let algo = AlgorithmConfig {
            tracking_iters: 3,
            ..AlgorithmConfig::default()
        };
        let out = track_frame(
            &d.world.scene,
            d.intrinsics,
            d.gt_poses[1],
            &d.frames[1],
            SamplingStrategy::LowRes { factor: 4 },
            Pipeline::TileBased,
            &algo,
            &RenderConfig::default(),
            3,
        );
        assert!(out.final_loss.is_finite());
        // Low-res renders (64/4)×(48/4) = 192 pixels per iteration.
        assert!((out.pixels_per_iter - 192.0).abs() < 1.0);
    }

    #[test]
    fn loss_guided_strategy_runs() {
        let d = tiny_dataset();
        let algo = AlgorithmConfig {
            tracking_iters: 3,
            ..AlgorithmConfig::default()
        };
        let out = track_frame(
            &d.world.scene,
            d.intrinsics,
            d.gt_poses[1],
            &d.frames[1],
            SamplingStrategy::LossGuidedTiles { tile: 8 },
            Pipeline::TileBased,
            &algo,
            &RenderConfig::default(),
            3,
        );
        assert!(out.final_loss.is_finite());
    }

    #[test]
    fn constant_velocity_extrapolates() {
        let p0 = Pose::identity();
        let step = Se3::new(Vec3::new(0.1, 0.0, 0.0), Vec3::ZERO).exp();
        let p1 = step.compose(&p0);
        let predicted = constant_velocity_init(p1, Some(p0));
        let expected = step.compose(&p1);
        assert!(predicted.translation_distance_to(&expected) < 1e-9);
        // Without history it returns the previous pose.
        assert_eq!(constant_velocity_init(p1, None), p1);
    }

    #[test]
    fn downsample_frame_shapes() {
        let d = tiny_dataset();
        let small = downsample_frame(&d.frames[0], 4);
        assert_eq!(small.width(), 16);
        assert_eq!(small.height(), 12);
    }
}
