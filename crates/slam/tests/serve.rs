//! Integration tests for the multi-session serving layer (DESIGN.md §15).
//!
//! The serving contract under test: interleaving K sessions through one
//! [`SessionManager`] — including eviction to disk mid-sequence — is
//! **bitwise invisible** in every session's results, at any worker-pool
//! width; scheduling is fair; queues are bounded; failures are typed.

use splatonic_slam::prelude::*;
use splatonic_slam::serve::{ServeConfig, ServeError, SessionManager, SessionOutcome};
use splatonic_telemetry::Telemetry;
use std::path::PathBuf;

fn tiny(frames: usize) -> DatasetConfig {
    DatasetConfig {
        width: 64,
        height: 48,
        frames,
        spacing: 0.3,
        fov: 1.25,
        furniture: 2,
        depth_dropout_coverage: 0.9,
    }
}

fn config(threads: usize) -> SlamConfig {
    let mut cfg = SlamConfig::default();
    cfg.render.threads = threads;
    cfg
}

fn datasets(count: usize, frames: usize) -> Vec<Dataset> {
    (0..count)
        .map(|i| Dataset::replica_like(&format!("serve-{i}"), 31 + 16 * i as u64, tiny(frames)))
        .collect()
}

/// A fresh per-test eviction directory under the target tmpdir.
fn evict_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("splatonic-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Serves all datasets interleaved through one manager (producers offer up
/// to two frames per session per round, then the manager steps once per
/// session) and finishes every session, in order.
fn serve_interleaved(
    serve_config: ServeConfig,
    cfg: SlamConfig,
    data: &[Dataset],
) -> (SessionManager, Vec<SessionOutcome>) {
    let mut manager = SessionManager::new(serve_config);
    let ids: Vec<u32> = data
        .iter()
        .map(|d| manager.create_session(&d.name, cfg, d.intrinsics))
        .collect();
    let mut cursor = vec![0usize; data.len()];
    while cursor.iter().zip(data).any(|(c, d)| *c < d.len()) {
        for (i, d) in data.iter().enumerate() {
            for _ in 0..2 {
                if cursor[i] >= d.len() {
                    break;
                }
                match manager.ingest(ids[i], d.frames[cursor[i]].clone(), d.gt_poses[cursor[i]]) {
                    Ok(()) => cursor[i] += 1,
                    Err(ServeError::Backpressure { .. }) => break,
                    Err(e) => panic!("ingest failed: {e}"),
                }
            }
        }
        for _ in 0..data.len() {
            manager.step().expect("step");
        }
    }
    manager.run_until_blocked().expect("drain");
    let outcomes = ids
        .iter()
        .map(|&id| {
            manager.close(id).expect("close");
            manager.finish(id).expect("finish")
        })
        .collect();
    (manager, outcomes)
}

fn assert_bitwise(name: &str, served: &SlamResult, sequential: &SlamResult) {
    assert_eq!(
        served.est_poses.len(),
        sequential.est_poses.len(),
        "{name}: pose count"
    );
    for (i, (a, b)) in served
        .est_poses
        .iter()
        .zip(sequential.est_poses.iter())
        .enumerate()
    {
        assert_eq!(a, b, "{name}: pose {i} not bitwise identical");
    }
    assert_eq!(
        served.ate_cm.to_bits(),
        sequential.ate_cm.to_bits(),
        "{name}: ate_cm"
    );
    assert_eq!(
        served.psnr_db.to_bits(),
        sequential.psnr_db.to_bits(),
        "{name}: psnr_db"
    );
    assert_eq!(
        served.tracking_trace, sequential.tracking_trace,
        "{name}: tracking trace"
    );
    assert_eq!(
        served.mapping_trace, sequential.mapping_trace,
        "{name}: mapping trace"
    );
    assert_eq!(
        served.scene_size, sequential.scene_size,
        "{name}: scene size"
    );
    assert_eq!(
        (served.tracking_iters, served.mapping_iters),
        (sequential.tracking_iters, sequential.mapping_iters),
        "{name}: iteration counts"
    );
}

#[test]
fn interleaved_sessions_are_bit_identical_to_sequential_at_any_width() {
    let data = datasets(2, 6);
    // 1 worker, a fixed width, and auto: interleaving must be invisible at
    // every pool configuration (the deterministic-pool contract extended
    // across sessions).
    for threads in [1usize, 4, 0] {
        let cfg = config(threads);
        let (_, outcomes) = serve_interleaved(
            ServeConfig {
                queue_capacity: 2,
                max_resident: 0,
                evict_dir: None,
                telemetry: false,
            },
            cfg,
            &data,
        );
        for (outcome, d) in outcomes.iter().zip(&data) {
            let sequential = SlamSystem::new(cfg, d.intrinsics).run(d);
            assert_bitwise(
                &format!("{} @ threads={threads}", d.name),
                &outcome.result,
                &sequential,
            );
        }
    }
}

#[test]
fn eviction_mid_sequence_resumes_bitwise() {
    let data = datasets(2, 6);
    let cfg = config(0);
    // max_resident = 1 with two active sessions: every scheduling switch
    // ping-pongs a session through the snapshot file.
    let (manager, outcomes) = serve_interleaved(
        ServeConfig {
            queue_capacity: 2,
            max_resident: 1,
            evict_dir: Some(evict_dir("pingpong")),
            telemetry: false,
        },
        cfg,
        &data,
    );
    assert!(
        manager.evictions() > 2,
        "expected repeated evictions, got {}",
        manager.evictions()
    );
    assert!(
        manager.resumes() > 2,
        "expected repeated resumes, got {}",
        manager.resumes()
    );
    for (outcome, d) in outcomes.iter().zip(&data) {
        assert!(outcome.evictions > 0, "{}: never evicted", d.name);
        assert!(outcome.resumes > 0, "{}: never resumed", d.name);
        let sequential = SlamSystem::new(cfg, d.intrinsics).run(d);
        assert_bitwise(
            &format!("{} via eviction", d.name),
            &outcome.result,
            &sequential,
        );
    }
}

#[test]
fn backpressure_bounds_the_ingest_queue() {
    let d = &datasets(1, 4)[0];
    let mut manager = SessionManager::new(ServeConfig {
        queue_capacity: 2,
        max_resident: 0,
        evict_dir: None,
        telemetry: false,
    });
    let id = manager.create_session(&d.name, config(1), d.intrinsics);
    manager
        .ingest(id, d.frames[0].clone(), d.gt_poses[0])
        .unwrap();
    manager
        .ingest(id, d.frames[1].clone(), d.gt_poses[1])
        .unwrap();
    match manager.ingest(id, d.frames[2].clone(), d.gt_poses[2]) {
        Err(ServeError::Backpressure { session, pending }) => {
            assert_eq!(session, id);
            assert_eq!(pending, 2);
        }
        other => panic!("expected backpressure, got {other:?}"),
    }
    // One step frees one slot; the retry succeeds.
    manager.step().unwrap().expect("a frame was pending");
    assert_eq!(manager.pending(id).unwrap(), 1);
    manager
        .ingest(id, d.frames[2].clone(), d.gt_poses[2])
        .unwrap();
}

#[test]
fn scheduling_is_round_robin_over_ready_sessions() {
    let data = datasets(3, 2);
    let mut manager = SessionManager::new(ServeConfig {
        queue_capacity: 2,
        max_resident: 0,
        evict_dir: None,
        telemetry: false,
    });
    let ids: Vec<u32> = data
        .iter()
        .map(|d| manager.create_session(&d.name, config(1), d.intrinsics))
        .collect();
    for (i, d) in data.iter().enumerate() {
        for t in 0..2 {
            manager
                .ingest(ids[i], d.frames[t].clone(), d.gt_poses[t])
                .unwrap();
        }
    }
    let mut order = Vec::new();
    while let Some(report) = manager.step().unwrap() {
        order.push(report.session);
    }
    // Three ready sessions, two frames each: perfect rotation, no session
    // steps twice before the others step once.
    assert_eq!(
        order,
        vec![ids[0], ids[1], ids[2], ids[0], ids[1], ids[2]],
        "round-robin order violated"
    );
}

#[test]
fn lifecycle_errors_are_typed() {
    let d = &datasets(1, 3)[0];
    let mut manager = SessionManager::new(ServeConfig {
        queue_capacity: 2,
        max_resident: 0,
        evict_dir: None,
        telemetry: false,
    });
    assert!(matches!(
        manager.pending(999),
        Err(ServeError::UnknownSession(999))
    ));
    let id = manager.create_session(&d.name, config(1), d.intrinsics);
    assert!(matches!(manager.evict(id), Err(ServeError::NoEvictDir)));
    assert!(matches!(
        manager.finish(id),
        Err(ServeError::NotClosed(i)) if i == id
    ));
    manager
        .ingest(id, d.frames[0].clone(), d.gt_poses[0])
        .unwrap();
    manager.close(id).unwrap();
    assert!(matches!(
        manager.ingest(id, d.frames[1].clone(), d.gt_poses[1]),
        Err(ServeError::Closed(i)) if i == id
    ));
    assert!(matches!(
        manager.finish(id),
        Err(ServeError::NotDrained { session, pending: 1 }) if session == id
    ));
    manager.run_until_blocked().unwrap();
    let outcome = manager.finish(id).unwrap();
    assert_eq!(outcome.result.frames, 1);
    assert!(matches!(
        manager.finish(id),
        Err(ServeError::UnknownSession(i)) if i == id
    ));

    // A session closed before processing anything cannot be finalized.
    let empty = manager.create_session("empty", config(1), d.intrinsics);
    manager.close(empty).unwrap();
    assert!(matches!(
        manager.finish(empty),
        Err(ServeError::Empty(i)) if i == empty
    ));
}

#[test]
fn corrupt_eviction_snapshot_reports_a_typed_error() {
    let d = &datasets(1, 3)[0];
    let dir = evict_dir("corrupt");
    let mut manager = SessionManager::new(ServeConfig {
        queue_capacity: 3,
        max_resident: 0,
        evict_dir: Some(dir.clone()),
        telemetry: false,
    });
    let id = manager.create_session(&d.name, config(1), d.intrinsics);
    manager
        .ingest(id, d.frames[0].clone(), d.gt_poses[0])
        .unwrap();
    manager.step().unwrap().expect("frame pending");
    manager.evict(id).unwrap();
    assert!(!manager.is_resident(id).unwrap());

    // Flip a payload byte: the next step must resume, fail checksum
    // validation, and surface the typed snapshot error (not a panic, not a
    // silently diverged session).
    let snap = dir.join(format!("session_{id}.snap"));
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    manager
        .ingest(id, d.frames[1].clone(), d.gt_poses[1])
        .unwrap();
    match manager.step() {
        Err(ServeError::Snapshot(e)) => {
            let text = e.to_string();
            assert!(
                text.contains("checksum"),
                "expected a checksum failure, got: {text}"
            );
        }
        other => panic!("expected a snapshot error, got {other:?}"),
    }
}

#[test]
fn served_session_counters_match_a_solo_instrumented_run() {
    let d = &datasets(1, 5)[0];
    let cfg = config(1);

    // Solo reference: one system, one telemetry handle, same thread (the
    // projection cache is thread-local, so this is an exact-counter oracle).
    let solo_tel = Telemetry::enabled();
    let mut solo = SlamSystem::new(cfg, d.intrinsics);
    let solo_result = solo.run_with_telemetry(d, &solo_tel);
    let solo_report = solo_tel.finish(
        &d.name,
        splatonic_telemetry::AccuracySummary {
            ate_cm: solo_result.ate_cm,
            psnr_db: solo_result.psnr_db,
            frames: solo_result.frames,
            scene_size: solo_result.scene_size,
        },
    );

    let (_, outcomes) = serve_interleaved(
        ServeConfig {
            queue_capacity: 2,
            max_resident: 0,
            evict_dir: None,
            telemetry: true,
        },
        cfg,
        std::slice::from_ref(d),
    );
    let served_report = &outcomes[0].report;

    let counter = |report: &splatonic_telemetry::RunReport, name: &str| {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    for key in [
        "render/cache_hits",
        "render/cache_misses",
        "render/cache_invalidations",
        "slam/tracking_iters",
        "slam/mapping_iters",
        "slam/mapping_invocations",
    ] {
        assert_eq!(
            counter(served_report, key),
            counter(&solo_report, key),
            "served session counter {key} diverged from the solo oracle"
        );
    }
    assert_eq!(served_report.frames.len(), solo_report.frames.len());
}

#[test]
fn ingest_rejects_mismatched_frame_dimensions() {
    let d = &datasets(1, 3)[0];
    let other = Dataset::replica_like(
        "serve-mismatch",
        77,
        DatasetConfig {
            width: 32,
            height: 24,
            ..tiny(3)
        },
    );
    let mut manager = SessionManager::new(ServeConfig::default());
    let id = manager.create_session(&d.name, config(1), d.intrinsics);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = manager.ingest(id, other.frames[0].clone(), other.gt_poses[0]);
    }));
    assert!(
        result.is_err(),
        "mismatched frame dimensions must be rejected"
    );
}

#[test]
fn explicit_evict_is_transparent_and_idempotent() {
    let d = &datasets(1, 4)[0];
    let cfg = config(1);
    let dir = evict_dir("explicit");
    let mut manager = SessionManager::new(ServeConfig {
        queue_capacity: 4,
        max_resident: 0,
        evict_dir: Some(dir),
        telemetry: false,
    });
    let id = manager.create_session(&d.name, cfg, d.intrinsics);
    for t in 0..2 {
        manager
            .ingest(id, d.frames[t].clone(), d.gt_poses[t])
            .unwrap();
    }
    manager.run_until_blocked().unwrap();
    manager.evict(id).unwrap();
    manager.evict(id).unwrap(); // second evict: no-op, not an error
    assert!(!manager.is_resident(id).unwrap());
    assert_eq!(
        manager.evictions(),
        1,
        "idempotent evict must snapshot once"
    );
    for t in 2..4 {
        manager
            .ingest(id, d.frames[t].clone(), d.gt_poses[t])
            .unwrap();
    }
    manager.run_until_blocked().unwrap();
    assert!(
        manager.is_resident(id).unwrap(),
        "stepping resumes the session"
    );
    manager.close(id).unwrap();
    let outcome = manager.finish(id).unwrap();
    let sequential = SlamSystem::new(cfg, d.intrinsics).run(d);
    assert_bitwise("explicit evict", &outcome.result, &sequential);
}
