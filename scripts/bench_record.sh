#!/usr/bin/env bash
# Records a scalar-vs-SIMD kernel benchmark pair into BENCH_kernels.json.
#
# Runs the `kernels` micro-benchmark binary twice — once with `--scalar`
# (the bit-exactness oracle) and once with `--simd` (the vector kernels,
# DESIGN.md §13) — and appends one dated entry holding both runs' span
# timings plus the derived per-kernel speedups. The file is a trajectory:
# each commit that touches the hot kernels should append an entry so the
# history of the scalar/SIMD gap stays reviewable in-repo.
#
# Usage: bench_record.sh [--iters N] [--out BENCH_kernels.json]
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS=50
OUT=BENCH_kernels.json
while [[ $# -gt 0 ]]; do
  case "$1" in
    --iters) ITERS="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cargo build --release -p splatonic-bench --bin kernels

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "[bench_record] scalar pass (${ITERS} iters)..."
./target/release/kernels --iters "$ITERS" --scalar \
  --report "$TMP/scalar.json" >/dev/null
echo "[bench_record] simd pass (${ITERS} iters)..."
./target/release/kernels --iters "$ITERS" --simd \
  --report "$TMP/simd.json" >/dev/null

python3 - "$TMP/scalar.json" "$TMP/simd.json" "$OUT" "$ITERS" <<'EOF'
import json
import sys
import time

scalar = json.load(open(sys.argv[1]))
simd = json.load(open(sys.argv[2]))
out_path = sys.argv[3]
iters = int(sys.argv[4])

# The per-kernel micro-spans plus the end-to-end schedule spans: enough to
# read both where the speedup comes from and what it buys overall.
SPANS = [
    "kernel/project",
    "kernel/alpha_check",
    "kernel/composite",
    "kernel/gradient",
    "forward/pixel_dense",
    "forward/pixel_sparse16",
    "forward/tile_dense",
    "forward/tile_sparse16",
    "backward/pixel_sparse16",
]


def times(report):
    out = {}
    for name in SPANS:
        span = report["spans"].get(name)
        if span is None:
            sys.exit(f"bench_record: span {name} missing from report")
        out[name] = round(span["total_ms"], 3)
    return out


scalar_ms = times(scalar)
simd_ms = times(simd)
entry = {
    "date": time.strftime("%Y-%m-%d", time.gmtime()),
    "iters": iters,
    "simd_lanes": int(simd["gauges"]["render/simd_lanes"]),
    "scalar_ms": scalar_ms,
    "simd_ms": simd_ms,
    "speedup": {
        name: round(scalar_ms[name] / simd_ms[name], 2) if simd_ms[name] > 0 else None
        for name in SPANS
    },
}

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {
        "description": (
            "Scalar-vs-SIMD kernel timing trajectory (scripts/bench_record.sh). "
            "Spans are total_ms over `iters` iterations of the `kernels` "
            "micro-benchmark; speedup = scalar_ms / simd_ms. Both modes "
            "produce bit-identical output (DESIGN.md §13), so only wall "
            "time differs. Timings are machine-dependent; compare entries "
            "recorded on comparable hosts."
        ),
        "entries": [],
    }
doc["entries"].append(entry)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"bench_record: appended entry {len(doc['entries'])} to {out_path}")
for name in SPANS:
    s = entry["speedup"][name]
    print(f"  {name:24s} scalar {scalar_ms[name]:9.2f} ms  "
          f"simd {simd_ms[name]:9.2f} ms  speedup {s if s else 'n/a'}x")
EOF
