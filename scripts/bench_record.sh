#!/usr/bin/env bash
# Records a scalar-vs-SIMD kernel benchmark pair into BENCH_kernels.json
# and a tile-sort ablation pair into BENCH_sort.json.
#
# Runs the `kernels` micro-benchmark binary twice — once with `--scalar`
# (the bit-exactness oracle) and once with `--simd` (the vector kernels,
# DESIGN.md §13) — and appends one dated entry holding both runs' span
# timings plus the derived per-kernel speedups. The file is a trajectory:
# each commit that touches the hot kernels should append an entry so the
# history of the scalar/SIMD gap stays reviewable in-repo.
#
# It then runs the sort A/B pair — `--no-tile-grouping --no-sort-cache`
# (the per-tile uncached baseline) versus the default grouped + cached
# schedule (DESIGN.md §16) — and appends the compared-element counts and
# the realized reduction to the BENCH_sort.json trajectory. The sort
# counts are deterministic workload counters, not timings, so entries are
# comparable across hosts; the acceptance bar is reduction >= 2x.
#
# Usage: bench_record.sh [--iters N] [--out BENCH_kernels.json]
#                        [--sort-out BENCH_sort.json]
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS=50
OUT=BENCH_kernels.json
SORT_OUT=BENCH_sort.json
while [[ $# -gt 0 ]]; do
  case "$1" in
    --iters) ITERS="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --sort-out) SORT_OUT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cargo build --release -p splatonic-bench --bin kernels

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "[bench_record] scalar pass (${ITERS} iters)..."
./target/release/kernels --iters "$ITERS" --scalar \
  --report "$TMP/scalar.json" >/dev/null
echo "[bench_record] simd pass (${ITERS} iters)..."
./target/release/kernels --iters "$ITERS" --simd \
  --report "$TMP/simd.json" >/dev/null

python3 - "$TMP/scalar.json" "$TMP/simd.json" "$OUT" "$ITERS" <<'EOF'
import json
import sys
import time

scalar = json.load(open(sys.argv[1]))
simd = json.load(open(sys.argv[2]))
out_path = sys.argv[3]
iters = int(sys.argv[4])

# The per-kernel micro-spans plus the end-to-end schedule spans: enough to
# read both where the speedup comes from and what it buys overall.
SPANS = [
    "kernel/project",
    "kernel/alpha_check",
    "kernel/composite",
    "kernel/gradient",
    "forward/pixel_dense",
    "forward/pixel_sparse16",
    "forward/tile_dense",
    "forward/tile_sparse16",
    "backward/pixel_sparse16",
]


def times(report):
    out = {}
    for name in SPANS:
        span = report["spans"].get(name)
        if span is None:
            sys.exit(f"bench_record: span {name} missing from report")
        out[name] = round(span["total_ms"], 3)
    return out


scalar_ms = times(scalar)
simd_ms = times(simd)
entry = {
    "date": time.strftime("%Y-%m-%d", time.gmtime()),
    "iters": iters,
    "simd_lanes": int(simd["gauges"]["render/simd_lanes"]),
    "scalar_ms": scalar_ms,
    "simd_ms": simd_ms,
    "speedup": {
        name: round(scalar_ms[name] / simd_ms[name], 2) if simd_ms[name] > 0 else None
        for name in SPANS
    },
}

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {
        "description": (
            "Scalar-vs-SIMD kernel timing trajectory (scripts/bench_record.sh). "
            "Spans are total_ms over `iters` iterations of the `kernels` "
            "micro-benchmark; speedup = scalar_ms / simd_ms. Both modes "
            "produce bit-identical output (DESIGN.md §13), so only wall "
            "time differs. Timings are machine-dependent; compare entries "
            "recorded on comparable hosts."
        ),
        "entries": [],
    }
doc["entries"].append(entry)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"bench_record: appended entry {len(doc['entries'])} to {out_path}")
for name in SPANS:
    s = entry["speedup"][name]
    print(f"  {name:24s} scalar {scalar_ms[name]:9.2f} ms  "
          f"simd {simd_ms[name]:9.2f} ms  speedup {s if s else 'n/a'}x")
EOF

# Tile-sort ablation pair: per-tile uncached baseline vs the default
# grouped + frame-coherent-cached schedule. The burst shape is fixed
# inside the binary (4 poses x 2 iterations, forward + backward), so
# --iters only affects the unrelated timing spans; keep it small.
echo "[bench_record] sort baseline pass (per-tile, uncached)..."
./target/release/kernels --iters 2 --no-tile-grouping --no-sort-cache \
  --report "$TMP/sort_baseline.json" >/dev/null
echo "[bench_record] sort grouped pass (grouping + cache on)..."
./target/release/kernels --iters 2 --tile-grouping \
  --report "$TMP/sort_grouped.json" >/dev/null

python3 - "$TMP/sort_baseline.json" "$TMP/sort_grouped.json" "$SORT_OUT" <<'EOF'
import json
import sys
import time

baseline = json.load(open(sys.argv[1]))
grouped = json.load(open(sys.argv[2]))
out_path = sys.argv[3]

GAUGES = [
    "sort/naive_elems",
    "sort/sched_elems",
    "sort/realized_elems",
    "sort/elems_reduction",
    "sort/group_reuse",
    "sort/hits",
    "sort/misses",
    "sort/merges",
]


def gauges(report, which):
    out = {}
    for name in GAUGES:
        value = report["gauges"].get(name)
        if value is None:
            sys.exit(f"bench_record: gauge {name} missing from {which} report")
        out[name.split("/", 1)[1]] = round(value, 3)
    return out


base = gauges(baseline, "baseline")
grp = gauges(grouped, "grouped")
if base["naive_elems"] != grp["naive_elems"]:
    sys.exit(
        "bench_record: A/B runs disagree on the per-tile baseline "
        f"({base['naive_elems']} vs {grp['naive_elems']})"
    )
reduction = grp["elems_reduction"]
if reduction < 2.0:
    sys.exit(
        f"bench_record: grouped+cached sort reduction {reduction}x is below "
        "the 2x acceptance bar (DESIGN.md §16)"
    )
entry = {
    "date": time.strftime("%Y-%m-%d", time.gmtime()),
    "per_tile_uncached": base,
    "grouped_cached": grp,
    "elems_reduction": reduction,
}

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {
        "description": (
            "Tile-sort ablation trajectory (scripts/bench_record.sh): the "
            "kernels binary's 4-pose x 2-iteration tracking burst, forward "
            "+ backward, per-tile uncached vs grouped + frame-coherent "
            "cache (DESIGN.md §16). All values are deterministic "
            "compared-element counts from the sort/* gauges — "
            "machine-independent, unlike the timing trajectories. "
            "elems_reduction = naive_elems / realized_elems and must stay "
            ">= 2x; rendered output is bit-identical in both schedules."
        ),
        "entries": [],
    }
doc["entries"].append(entry)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"bench_record: appended entry {len(doc['entries'])} to {out_path}")
print(
    f"  per-tile uncached {int(base['naive_elems'])} elems vs realized "
    f"{int(grp['realized_elems'])} ({reduction}x reduction, "
    f"group reuse {int(grp['group_reuse'])}, "
    f"hits {int(grp['hits'])}, merges {int(grp['merges'])})"
)
EOF
