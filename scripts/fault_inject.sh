#!/usr/bin/env bash
# Fault-injection gate for the checkpoint/resume subsystem (DESIGN.md §12).
#
# For each thread width (1, 4, and auto) the harness:
#   1. runs SLAM, cutting snapshots on a cadence, and kills the process
#      after a configurable frame (exit code 21 marks the planned crash);
#   2. resumes from the newest snapshot in a fresh process and asserts the
#      completed run is BITWISE identical (poses, ATE, PSNR, both workload
#      traces) to an uninterrupted in-process run;
#   3. corrupts the snapshot four ways (payload flip, truncation, bad magic,
#      future version) and asserts each is rejected with its typed error.
#
# Dependency-free: only cargo + coreutils.
set -uo pipefail
cd "$(dirname "$0")/.."

KILL_AT="${KILL_AT:-5}"
CHECKPOINT_EVERY="${CHECKPOINT_EVERY:-2}"
BIN=(cargo run --release -q -p splatonic-bench --bin fault_inject --)

echo "== build fault_inject =="
cargo build --release -q -p splatonic-bench --bin fault_inject

for width in 1 4 auto; do
  dir="$(mktemp -d "${TMPDIR:-/tmp}/splatonic-fault-XXXXXX")"
  trap 'rm -rf "$dir"' EXIT
  if [ "$width" = auto ]; then
    # Auto = the pool's own resolution (host parallelism); the env var must
    # be absent, not zero — it is read once per process and cached.
    unset SPLATONIC_THREADS || true
    env_prefix=(env -u SPLATONIC_THREADS)
  else
    env_prefix=(env "SPLATONIC_THREADS=$width")
  fi
  echo "== fault injection at SPLATONIC_THREADS=$width =="

  "${env_prefix[@]}" "${BIN[@]}" run --dir "$dir" --kill-at "$KILL_AT" \
    --checkpoint-every "$CHECKPOINT_EVERY"
  status=$?
  if [ "$status" -ne 21 ]; then
    echo "fault_inject: expected the simulated crash to exit 21, got $status" >&2
    exit 1
  fi
  if ! ls "$dir"/*.snap >/dev/null 2>&1; then
    echo "fault_inject: the killed run left no snapshot in $dir" >&2
    exit 1
  fi

  "${env_prefix[@]}" "${BIN[@]}" resume --dir "$dir" || exit 1
  "${env_prefix[@]}" "${BIN[@]}" corrupt --dir "$dir" || exit 1

  rm -rf "$dir"
  trap - EXIT
done

echo "fault_inject: OK"
