#!/usr/bin/env bash
# Tier-1 verification: everything here must pass before merging.
#
# The suite is dependency-free by design (see DESIGN.md "Telemetry & run
# reports"), so this runs fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --all --check =="
cargo fmt --all --check

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace --release -q (default parallelism) =="
cargo test --workspace --release -q

echo "== cargo test --workspace --release -q (SPLATONIC_THREADS=1) =="
# The worker pool must be bit-identical at every width; re-running the
# whole suite pinned to one worker catches any schedule-dependent output.
SPLATONIC_THREADS=1 cargo test --workspace --release -q

echo "== cargo test --workspace --release -q (SPLATONIC_THREADS=4) =="
# A mid-width pass exercises real chunked fan-out (width 1 degenerates to
# the sequential path), catching merge-order bugs 1-vs-default can miss.
SPLATONIC_THREADS=4 cargo test --workspace --release -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (documented crates; warnings are errors) =="
# The crates with #![warn(missing_docs)]: every public item must be
# documented and every intra-doc link must resolve (DESIGN.md §13, §14).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p splatonic-math -p splatonic-scene -p splatonic-render \
  -p splatonic-telemetry -p splatonic-slam -p splatonic-bench

echo "== traced instrumented run + trace/report gates (DESIGN.md §14) =="
# One quick instrumented pass exporting all three artifacts, then the
# schema gates: the Chrome trace must nest per-lane and span >= 2 threads
# (pool workers trace on their own lanes at SPLATONIC_THREADS=4), the JSONL
# stream must be one valid record per line, and report_diff must pass a
# self-compare (a report always matches itself).
VERIFY_TMP="$(mktemp -d)"
trap 'rm -rf "$VERIFY_TMP"' EXIT
SPLATONIC_THREADS=4 cargo run --release -p splatonic-bench --bin figures -- --quick \
  --report "$VERIFY_TMP/report.json" \
  --trace-out "$VERIFY_TMP/trace.json" \
  --events-out "$VERIFY_TMP/events.jsonl"
python3 scripts/check_trace.py "$VERIFY_TMP/trace.json" --min-threads 2
python3 - "$VERIFY_TMP/events.jsonl" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
types = [json.loads(l)["type"] for l in lines]
assert types[0] == "run_start" and types[-1] == "run_end", types[:1] + types[-1:]
assert "span" in types and "frame" in types, "stream missing span/frame records"
print(f"events stream: OK ({len(lines)} records)")
EOF
cargo run --release -p splatonic-bench --bin report_diff -- \
  "$VERIFY_TMP/report.json" "$VERIFY_TMP/report.json"

echo "== roundtrip plan: .ply export/import + LOD + v1 snapshot decode (DESIGN.md §17) =="
# The committed asset-pipeline smoke: run -> checkpoint -> export .ply ->
# bit-stability assert -> re-import -> 50% LOD decimation within the
# documented PSNR floor -> decode of the committed v1 snapshot fixture.
# figures exits nonzero on any failed plan assertion.
SPLATONIC_THREADS=4 cargo run --release -p splatonic-bench --bin figures -- --quick \
  --plan plans/roundtrip.json --plan-dir "$VERIFY_TMP/plan"
test -s "$VERIFY_TMP/plan/roundtrip_full.ply"

echo "== fleet smoke: 3 interleaved sessions, bitwise vs sequential (DESIGN.md §15) =="
# The serving layer's contract end to end: K sessions interleaved through
# one SessionManager (with snapshot eviction/resume forced by the default
# max-resident of K-1) must be bitwise identical to K sequential runs —
# the fleet binary exits nonzero on any divergence or if no eviction
# cycle happened. The merged trace must carry one process group per
# session and still pass the per-lane nesting gate.
SPLATONIC_THREADS=4 cargo run --release -p splatonic-bench --bin fleet -- --quick --sessions 3 \
  --report "$VERIFY_TMP/fleet_report.json" \
  --trace-out "$VERIFY_TMP/fleet_trace.json"
python3 scripts/check_trace.py "$VERIFY_TMP/fleet_trace.json" --min-threads 2

echo "== scripts/fault_inject.sh (kill/resume bitwise + corruption gate) =="
# Cross-process checkpoint/resume: kill mid-run, resume from the snapshot,
# assert bitwise-identical results at widths 1, 4, and auto (DESIGN.md §12).
bash scripts/fault_inject.sh

echo "verify: OK"
