#!/usr/bin/env bash
# Tier-1 verification: everything here must pass before merging.
#
# The suite is dependency-free by design (see DESIGN.md "Telemetry & run
# reports"), so this runs fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --all --check =="
cargo fmt --all --check

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace --release -q (default parallelism) =="
cargo test --workspace --release -q

echo "== cargo test --workspace --release -q (SPLATONIC_THREADS=1) =="
# The worker pool must be bit-identical at every width; re-running the
# whole suite pinned to one worker catches any schedule-dependent output.
SPLATONIC_THREADS=1 cargo test --workspace --release -q

echo "== cargo test --workspace --release -q (SPLATONIC_THREADS=4) =="
# A mid-width pass exercises real chunked fan-out (width 1 degenerates to
# the sequential path), catching merge-order bugs 1-vs-default can miss.
SPLATONIC_THREADS=4 cargo test --workspace --release -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (math, scene, render; warnings are errors) =="
# The three crates with #![warn(missing_docs)]: every public item must be
# documented and every intra-doc link must resolve (DESIGN.md §13).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p splatonic-math -p splatonic-scene -p splatonic-render

echo "== scripts/fault_inject.sh (kill/resume bitwise + corruption gate) =="
# Cross-process checkpoint/resume: kill mid-run, resume from the snapshot,
# assert bitwise-identical results at widths 1, 4, and auto (DESIGN.md §12).
bash scripts/fault_inject.sh

echo "verify: OK"
