#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh run report against the committed
baseline (scripts/bench_baseline.json).

Usage: check_bench.py REPORT BASELINE

The renderer is deterministic at every thread width, so the comparison can
be strict where determinism holds and loose only where the machine shows
through:

* workload counters: exact (same keys, same values);
* per-frame integer/bool fields (track_iters, sampled pixels, gaussian
  count, cache hits/invalidations, ...): exact;
* accuracy (psnr_db, ate_cm) and per-frame floats: tight tolerance;
* span timings: count exact, total time within a generous multiplier of
  the baseline (CI runners are slow and noisy);
* anything under pool/ (worker count, per-worker busy time): skipped,
  machine-dependent by nature.

The span (and latency-histogram) comparison is delegated to the Rust
`report_diff` binary when one is built (`$REPORT_DIFF_BIN`, then
`target/release/report_diff`), so the policy lives in one place
(`crates/bench/src/diff.rs`); without the binary an equivalent Python
fallback below covers the span section.

Only the Python standard library is used. Exit code 0 = pass, 1 = fail
(all violations are listed, not just the first).
"""

import json
import os
import subprocess
import sys

# Tolerances. Accuracy metrics are deterministic in principle, but keep a
# small absolute window so a libm or codegen difference between toolchain
# patch levels does not hard-fail CI on an invisible change.
FLOAT_ABS_TOL = 0.05  # dB for PSNR, cm for ATE, per-frame floats
GAUGE_REL_TOL = 1e-6  # deterministic hardware-model outputs
TIMING_MULT = 25.0  # report span total_ms may be up to 25x baseline
TIMING_FLOOR_MS = 5.0  # ...with a floor so micro-spans cannot flake

FRAME_EXACT_FIELDS = [
    "frame_idx",
    "track_iters",
    "map_invoked",
    "sampled_pixels",
    "map_sampled_pixels",
    "gaussian_count",
    "cache_hits",
    "cache_invalidations",
]
FRAME_FLOAT_FIELDS = ["psnr_db", "ate_so_far_cm"]
# pool/ is worker timing; render/simd_lanes is the host vector width (4 with
# AVX2, 2 on NEON, 1 scalar) — present on both sides but value-skipped.
SKIP_PREFIXES = ("pool/", "render/simd_lanes")

# Instrumentation the report run must carry regardless of what the baseline
# happens to contain — a dropped checkpoint subsystem (or a silently
# disabled sorted-tile-list cache) must fail the gate even if both sides
# lost the keys together.
REQUIRED_COUNTERS = [
    "slam/checkpoints_written",
    "render/sort_hits",
    "render/sort_misses",
    "render/sort_merges",
    "render/sort_cold_elems",
    "render/sort_merged_elems",
    "assets/ply_gaussians_written",
    "assets/ply_gaussians_read",
    "lod/pruned",
    "mapping/densify_capped",
]
# The subset that must additionally be nonzero: any instrumented run
# checkpoints, performs at least one cold tile-sort build (the per-frame
# PSNR evaluation renders the tile schedule), and roundtrips the scene
# through the `.ply` codec. Exact hits/merges depend on the run shape —
# and lod/pruned / mapping/densify_capped are zero whenever their knobs
# are off — so those are presence-only.
REQUIRED_NONZERO = [
    "slam/checkpoints_written",
    "render/sort_misses",
    "render/sort_cold_elems",
    "assets/ply_gaussians_written",
    "assets/ply_gaussians_read",
]
REQUIRED_GAUGES = ["slam/snapshot_bytes", "render/simd_lanes"]


def machine_dependent(name):
    return any(name.startswith(p) for p in SKIP_PREFIXES)


def report_diff_binary():
    """Path to a usable report_diff binary, or None for the Python fallback."""
    explicit = os.environ.get("REPORT_DIFF_BIN")
    if explicit:
        return explicit if os.access(explicit, os.X_OK) else None
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    default = os.path.join(repo, "target", "release", "report_diff")
    return default if os.access(default, os.X_OK) else None


def delegated_span_errors(report_path, baseline_path):
    """Span/latency violations from `report_diff --spans-only`, or None when
    no binary is available (callers fall back to the Python span check)."""
    binary = report_diff_binary()
    if binary is None:
        return None
    proc = subprocess.run(
        [binary, report_path, baseline_path, "--spans-only"],
        capture_output=True,
        text=True,
    )
    if proc.returncode == 0:
        return []
    if proc.returncode == 1:
        return [
            line[len("  - "):]
            for line in proc.stderr.splitlines()
            if line.startswith("  - ")
        ] or [f"report_diff failed without violations: {proc.stderr.strip()}"]
    # Usage error or crash: surface it rather than silently passing.
    return [f"report_diff exited {proc.returncode}: {proc.stderr.strip()}"]


def python_span_errors(report, baseline):
    """Span-section fallback mirroring `report_diff --spans-only`."""
    errors = []
    err = errors.append
    spans_r = {
        k: v for k, v in report.get("spans", {}).items() if not machine_dependent(k)
    }
    spans_b = {
        k: v for k, v in baseline.get("spans", {}).items() if not machine_dependent(k)
    }
    for name in sorted(set(spans_b) - set(spans_r)):
        err(f"spans.{name}: missing from report")
    # A span only the report carries is just as suspicious as one only the
    # baseline carries: it means instrumentation changed without the
    # baseline being regenerated, and its timing would go ungated.
    for name in sorted(set(spans_r) - set(spans_b)):
        err(f"spans.{name}: not in baseline; "
            "regenerate scripts/bench_baseline.json")
    for name in sorted(set(spans_r) & set(spans_b)):
        r, b = spans_r[name], spans_b[name]
        if r.get("count") != b.get("count"):
            err(
                f"spans.{name}.count: report {r.get('count')} "
                f"!= baseline {b.get('count')}"
            )
        # A span record without total_ms must hard-fail, not default to a
        # value that trivially passes the timing bound.
        for side, rec in (("report", r), ("baseline", b)):
            if "total_ms" not in rec:
                err(f"spans.{name}.total_ms: missing from {side}")
        if "total_ms" not in r or "total_ms" not in b:
            continue
        limit = max(b["total_ms"] * TIMING_MULT, TIMING_FLOOR_MS)
        if r["total_ms"] > limit:
            err(
                f"spans.{name}.total_ms: report {r['total_ms']:.2f} ms "
                f"exceeds {TIMING_MULT}x baseline "
                f"({b['total_ms']:.2f} ms, limit {limit:.2f} ms)"
            )
    return errors


def check(report, baseline, span_errors=None):
    errors = []

    def err(msg):
        errors.append(msg)

    # Accuracy: structure exact, metrics within tolerance.
    acc_r, acc_b = report.get("accuracy", {}), baseline.get("accuracy", {})
    for field in ("frames", "scene_size"):
        if acc_r.get(field) != acc_b.get(field):
            err(
                f"accuracy.{field}: report {acc_r.get(field)} "
                f"!= baseline {acc_b.get(field)}"
            )
    for field in ("psnr_db", "ate_cm"):
        r, b = acc_r.get(field), acc_b.get(field)
        if r is None or b is None:
            err(f"accuracy.{field}: missing (report {r}, baseline {b})")
        elif abs(r - b) > FLOAT_ABS_TOL:
            err(
                f"accuracy.{field}: report {r} vs baseline {b} "
                f"(|delta| {abs(r - b):.4f} > {FLOAT_ABS_TOL})"
            )

    # Per-frame trajectory: counters exact, floats within tolerance.
    frames_r, frames_b = report.get("frames", []), baseline.get("frames", [])
    if len(frames_r) != len(frames_b):
        err(f"frames: report has {len(frames_r)}, baseline has {len(frames_b)}")
    for i, (fr, fb) in enumerate(zip(frames_r, frames_b)):
        for field in FRAME_EXACT_FIELDS:
            if fr.get(field) != fb.get(field):
                err(
                    f"frames[{i}].{field}: report {fr.get(field)} "
                    f"!= baseline {fb.get(field)}"
                )
        for field in FRAME_FLOAT_FIELDS:
            r, b = fr.get(field, 0.0), fb.get(field, 0.0)
            if abs(r - b) > FLOAT_ABS_TOL:
                err(
                    f"frames[{i}].{field}: report {r} vs baseline {b} "
                    f"(|delta| {abs(r - b):.4f} > {FLOAT_ABS_TOL})"
                )

    # Workload counters: deterministic, so exact — and no key may appear or
    # vanish silently (that is how a perf regression or a dropped
    # instrumentation point shows up).
    counters_r = {
        k: v for k, v in report.get("counters", {}).items() if not machine_dependent(k)
    }
    counters_b = {
        k: v
        for k, v in baseline.get("counters", {}).items()
        if not machine_dependent(k)
    }
    for name in sorted(set(counters_b) - set(counters_r)):
        err(f"counters.{name}: missing from report (baseline {counters_b[name]})")
    for name in sorted(set(counters_r) - set(counters_b)):
        err(f"counters.{name}: not in baseline (report {counters_r[name]}); "
            "regenerate scripts/bench_baseline.json")
    for name in sorted(set(counters_r) & set(counters_b)):
        if counters_r[name] != counters_b[name]:
            err(
                f"counters.{name}: report {counters_r[name]} "
                f"!= baseline {counters_b[name]}"
            )
    for name in REQUIRED_COUNTERS:
        for side, data in (("report", counters_r), ("baseline", counters_b)):
            if name not in data:
                err(f"counters.{name}: required, missing from {side}")
    for name in REQUIRED_NONZERO:
        if counters_r.get(name, 0) == 0 and name in counters_r:
            err(f"counters.{name}: required to be nonzero "
                "(its subsystem must have run)")

    # Spans: invocation counts are deterministic; wall time is not, so only
    # an upper bound (generous multiplier, floored) is enforced. When the
    # Rust report_diff ran (span_errors is a list), its verdict replaces
    # the Python fallback.
    if span_errors is None:
        span_errors = python_span_errors(report, baseline)
    errors.extend(span_errors)

    # Gauges: hardware-model outputs are deterministic functions of the
    # (deterministic) traces; compare with a relative tolerance.
    gauges_r = {
        k: v for k, v in report.get("gauges", {}).items() if not machine_dependent(k)
    }
    gauges_b = {
        k: v for k, v in baseline.get("gauges", {}).items() if not machine_dependent(k)
    }
    for name in sorted(set(gauges_b) - set(gauges_r)):
        err(f"gauges.{name}: missing from report (baseline {gauges_b[name]})")
    for name in sorted(set(gauges_r) & set(gauges_b)):
        r, b = gauges_r[name], gauges_b[name]
        tol = GAUGE_REL_TOL * max(abs(r), abs(b), 1.0)
        if abs(r - b) > tol:
            err(f"gauges.{name}: report {r} vs baseline {b} (tol {tol:.3g})")
    # Required gauges may be machine-dependent (value-skipped above), so
    # presence is checked against the unfiltered reports.
    for name in REQUIRED_GAUGES:
        for side, data in (
            ("report", report.get("gauges", {})),
            ("baseline", baseline.get("gauges", {})),
        ):
            if name not in data:
                err(f"gauges.{name}: required, missing from {side}")

    return errors


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[3], file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        report = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)
    span_errors = delegated_span_errors(argv[1], argv[2])
    if span_errors is not None:
        print("check_bench: span comparison via report_diff", file=sys.stderr)
    errors = check(report, baseline, span_errors)
    if errors:
        print(f"check_bench: FAIL ({len(errors)} violation(s))", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    n_counters = len(report.get("counters", {}))
    n_frames = len(report.get("frames", {}))
    print(
        f"check_bench: OK ({n_frames} frames, {n_counters} counters "
        f"match {argv[2]})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
