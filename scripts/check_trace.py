#!/usr/bin/env python3
"""Chrome trace-event schema gate for `figures --trace-out` output.

Usage: check_trace.py TRACE.json [--min-threads N]

Validates the trace the bench binaries export (and that Perfetto /
chrome://tracing will load):

* top level is `{"traceEvents": [...]}`;
* every event has a known phase (`M` metadata, `X` complete, or a matched
  `B`/`E` pair), an integer pid, and an integer tid >= 0;
* `X` events carry numeric `ts` and `dur >= 0`, and appear in
  non-decreasing `ts` order (the exporter sorts; a violation means the
  producers disagree on the timebase);
* `B`/`E` events nest properly per (pid, tid): every `E` matches the name
  of the innermost open `B`, and nothing is left open at the end;
* per (pid, tid), `X` events nest by time containment: walking them in
  (ts asc, dur desc) order, each event must lie within the still-open
  enclosing event (small epsilon for float microseconds);
* with `--min-threads N`, at least N distinct tids carry timed events —
  the multi-lane check (pool workers trace on their own lanes).

Only the Python standard library is used. Exit 0 = pass, 1 = fail (all
violations listed), 2 = usage.
"""

import json
import sys

# Duration events are f64 microseconds; allow sub-microsecond slack when
# checking containment so rounding at the ns -> us conversion cannot flake.
EPSILON_US = 0.5


def check(doc, min_threads):
    errors = []

    def err(msg):
        if len(errors) < 100:
            errors.append(msg)

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents: missing or not an array"], 0, 0
    if not events:
        err("traceEvents: empty")

    open_durations = {}  # (pid, tid) -> [names] for B/E matching
    x_by_lane = {}  # (pid, tid) -> [(ts, dur, name)]
    last_ts = None
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("M", "X", "B", "E"):
            err(f"events[{i}]: unknown phase {ph!r}")
            continue
        for field in ("pid", "tid"):
            v = e.get(field)
            if not isinstance(v, int) or isinstance(v, bool):
                err(f"events[{i}]: {field} must be an integer, got {v!r}")
        if not isinstance(e.get("tid"), bool) and isinstance(e.get("tid"), int):
            if e["tid"] < 0:
                err(f"events[{i}]: tid must be >= 0, got {e['tid']}")
        if ph == "M":
            continue
        name = e.get("name")
        if not isinstance(name, str) or not name:
            err(f"events[{i}]: timed event without a name")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            err(f"events[{i}]: ts must be a non-negative number, got {ts!r}")
            continue
        lane = (e.get("pid"), e.get("tid"))
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                err(f"events[{i}]: dur must be a non-negative number, got {dur!r}")
                continue
            if last_ts is not None and ts < last_ts - EPSILON_US:
                err(
                    f"events[{i}]: ts {ts} is before the previous timed "
                    f"event ({last_ts}); X events must be start-sorted"
                )
            last_ts = ts
            x_by_lane.setdefault(lane, []).append((ts, dur, name))
        elif ph == "B":
            open_durations.setdefault(lane, []).append(name)
        elif ph == "E":
            stack = open_durations.get(lane, [])
            if not stack:
                err(f"events[{i}]: E {name!r} on {lane} with no open B")
            else:
                opened = stack.pop()
                # Trace-event E records may omit the name; match when given.
                if name and opened != name:
                    err(
                        f"events[{i}]: E {name!r} does not match "
                        f"innermost B {opened!r} on {lane}"
                    )
    for lane, stack in open_durations.items():
        for name in stack:
            err(f"unclosed B {name!r} on {lane}")

    # Per-lane time-containment nesting of complete events.
    for lane, rows in x_by_lane.items():
        rows.sort(key=lambda r: (r[0], -r[1]))
        stack = []  # (end_ts, name)
        for ts, dur, name in rows:
            while stack and ts >= stack[-1][0] - EPSILON_US:
                stack.pop()
            if stack and ts + dur > stack[-1][0] + EPSILON_US:
                err(
                    f"lane {lane}: {name!r} [{ts}, {ts + dur}] overlaps the "
                    f"end of enclosing {stack[-1][1]!r} ({stack[-1][0]}) "
                    "without nesting inside it"
                )
            stack.append((ts + dur, name))

    lanes = len(x_by_lane)
    if lanes < min_threads:
        err(f"only {lanes} thread(s) carry timed events; need >= {min_threads}")

    return errors, lanes, sum(len(v) for v in x_by_lane.values())


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    min_threads = 1
    if "--min-threads" in argv:
        i = argv.index("--min-threads")
        if i + 1 >= len(argv):
            print("--min-threads requires an argument", file=sys.stderr)
            return 2
        min_threads = int(argv[i + 1])
        args = [a for a in args if a != argv[i + 1]]
    if len(args) != 1:
        print("usage: check_trace.py TRACE.json [--min-threads N]", file=sys.stderr)
        return 2
    with open(args[0]) as f:
        doc = json.load(f)
    errors, lanes, count = check(doc, min_threads)
    if errors:
        print(f"check_trace: FAIL ({len(errors)} violation(s))", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print(f"check_trace: OK ({count} timed events on {lanes} thread(s) in {args[0]})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
