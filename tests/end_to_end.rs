//! End-to-end integration tests spanning all crates: dataset synthesis →
//! SLAM → evaluation → hardware pricing.

use splatonic::prelude::*;

fn dataset() -> Dataset {
    Dataset::replica_like(
        "e2e",
        31,
        DatasetConfig {
            width: 96,
            height: 72,
            frames: 10,
            spacing: 0.26,
            fov: 1.25,
            furniture: 3,
            depth_dropout_coverage: 0.9,
        },
    )
}

#[test]
fn sparse_slam_tracks_and_reconstructs() {
    let d = dataset();
    let mut sys = SlamSystem::new(
        SlamConfig::splatonic(AlgorithmConfig::default()),
        d.intrinsics,
    );
    let r = sys.run(&d);
    assert!(r.ate_cm < 12.0, "ATE {} cm", r.ate_cm);
    assert!(r.psnr_db > 20.0, "PSNR {} dB", r.psnr_db);
    assert_eq!(r.est_poses.len(), d.len());
}

#[test]
fn sparse_accuracy_is_comparable_to_dense() {
    // The paper's headline accuracy claim: sparse sampling matches the
    // dense baseline (Fig. 17). Allow generous slack — these are short
    // noisy sequences — but sparse must stay in the same accuracy class.
    let d = dataset();
    let dense = SlamSystem::new(
        SlamConfig::dense_baseline(AlgorithmConfig::default()),
        d.intrinsics,
    )
    .run(&d);
    let sparse = SlamSystem::new(
        SlamConfig::splatonic(AlgorithmConfig::default()),
        d.intrinsics,
    )
    .run(&d);
    assert!(
        sparse.ate_cm < dense.ate_cm * 3.0 + 2.0,
        "sparse ATE {} vs dense {}",
        sparse.ate_cm,
        dense.ate_cm
    );
    assert!(
        sparse.psnr_db > dense.psnr_db - 8.0,
        "sparse PSNR {} vs dense {}",
        sparse.psnr_db,
        dense.psnr_db
    );
}

#[test]
fn sparse_renders_far_fewer_pixels() {
    let d = dataset();
    let dense = SlamSystem::new(
        SlamConfig::dense_baseline(AlgorithmConfig::default()),
        d.intrinsics,
    )
    .run(&d);
    let sparse = SlamSystem::new(
        SlamConfig::splatonic(AlgorithmConfig::default()),
        d.intrinsics,
    )
    .run(&d);
    let dense_px = dense.tracking_trace.forward.pixels_shaded;
    let sparse_px = sparse.tracking_trace.forward.pixels_shaded;
    // One pixel per 16x16 tile → ~256× fewer tracking pixels.
    assert!(
        (dense_px as f64 / sparse_px as f64) > 100.0,
        "dense {dense_px} vs sparse {sparse_px}"
    );
}

#[test]
fn slam_is_deterministic() {
    let d = dataset();
    let cfg = SlamConfig::splatonic(AlgorithmConfig::default());
    let a = SlamSystem::new(cfg, d.intrinsics).run(&d);
    let b = SlamSystem::new(cfg, d.intrinsics).run(&d);
    assert_eq!(a.ate_cm, b.ate_cm);
    assert_eq!(a.scene_size, b.scene_size);
    for (pa, pb) in a.est_poses.iter().zip(b.est_poses.iter()) {
        assert_eq!(pa.translation, pb.translation);
    }
}

#[test]
fn kill_and_resume_is_bitwise_identical_across_thread_widths() {
    // Checkpoint/resume contract (DESIGN.md §12): stop after frame k,
    // serialize, decode, resume — at ANY worker width, including a width
    // different from the one the snapshot was taken at — and the completed
    // run must be bitwise identical to an uninterrupted single-width run.
    let d = dataset();
    let cfg_for = |threads: usize| {
        let mut cfg = SlamConfig::splatonic(AlgorithmConfig::default());
        cfg.render.threads = threads;
        cfg
    };
    let full = SlamSystem::new(cfg_for(1), d.intrinsics).run(&d);
    let telemetry = splatonic::telemetry::Telemetry::disabled();
    for kill_after in [2usize, 6] {
        // Take the snapshot at width 1...
        let mut sys = SlamSystem::new(cfg_for(1), d.intrinsics);
        for _ in 0..=kill_after {
            sys.step_frame(&d, &telemetry);
        }
        let bytes = sys.checkpoint().to_bytes();
        drop(sys);
        let snap = splatonic_slam::Snapshot::from_bytes(&bytes).expect("snapshot decodes");
        // ...and resume at widths 1, 4, and 8.
        for threads in [1usize, 4, 8] {
            let mut resumed = SlamSystem::resume(cfg_for(threads), d.intrinsics, &d, &snap)
                .expect("snapshot resumes at any width");
            let r = resumed.run(&d);
            let label = format!("kill after {kill_after}, {threads} workers");
            assert_eq!(full.est_poses, r.est_poses, "{label}");
            assert_eq!(full.ate_cm.to_bits(), r.ate_cm.to_bits(), "{label}");
            assert_eq!(full.psnr_db.to_bits(), r.psnr_db.to_bits(), "{label}");
            assert_eq!(full.tracking_trace, r.tracking_trace, "{label}");
            assert_eq!(full.mapping_trace, r.mapping_trace, "{label}");
            assert_eq!(full.scene_size, r.scene_size, "{label}");
        }
    }
}

#[test]
fn hardware_pricing_end_to_end() {
    use splatonic::harness::{measure_tracking_iteration, TrackingScenario};
    let d = dataset();
    let scenario = TrackingScenario::prepare(&d, 5);
    let sampling = SamplingStrategy::RandomPerTile { tile: 16 };
    let tile = measure_tracking_iteration(&scenario, Pipeline::TileBased, sampling, 1);
    let pixel = measure_tracking_iteration(&scenario, Pipeline::PixelBased, sampling, 1);
    let gpu = HardwareTarget::GpuTile.price(&tile);
    let sw = HardwareTarget::GpuPixel.price(&pixel);
    let hw = HardwareTarget::SplatonicHw.price(&pixel);
    // The paper's hierarchy: HW < SW < GPU-tile time on the same sparse work.
    assert!(hw.seconds < sw.seconds);
    assert!(sw.seconds < gpu.seconds);
    assert!(hw.joules < gpu.joules);
}

#[test]
fn four_algorithm_presets_run() {
    use splatonic_slam::algorithm::AlgorithmPreset;
    let d = Dataset::replica_like(
        "e2e-presets",
        33,
        DatasetConfig {
            width: 64,
            height: 48,
            frames: 6,
            spacing: 0.3,
            fov: 1.25,
            furniture: 2,
            depth_dropout_coverage: 0.9,
        },
    );
    for preset in AlgorithmPreset::all() {
        let mut sys = SlamSystem::new(SlamConfig::splatonic(preset.config()), d.intrinsics);
        let r = sys.run(&d);
        assert!(r.ate_cm.is_finite(), "{} produced NaN ATE", preset.name());
        assert!(r.psnr_db.is_finite());
    }
}

#[test]
fn tum_like_fast_motion_still_tracks() {
    let d = Dataset::tum_like(
        "e2e-tum",
        35,
        DatasetConfig {
            width: 96,
            height: 72,
            frames: 10,
            spacing: 0.26,
            fov: 1.25,
            furniture: 3,
            depth_dropout_coverage: 0.9,
        },
    );
    let mut sys = SlamSystem::new(
        SlamConfig::splatonic(AlgorithmConfig::default()),
        d.intrinsics,
    );
    let r = sys.run(&d);
    // Fast motion is harder (paper Fig. 18 shows larger ATEs on TUM).
    assert!(r.ate_cm < 25.0, "TUM-like ATE {} cm", r.ate_cm);
}
