//! Scalar ≡ SIMD bit-exactness gate (DESIGN.md §13).
//!
//! The vector kernels in `splatonic_render::simd` replicate the scalar
//! oracles' floating-point operation order lane-by-lane, so every render
//! output — forward color/depth/transmittance, per-pixel contribution
//! lists, scene and pose gradients — must be *bitwise* identical between
//! `KernelMode::Scalar` and `KernelMode::Simd`, at every worker width.
//!
//! Widths 1, 4, and auto are swept explicitly here; `scripts/verify.sh`
//! additionally re-runs this whole file under `SPLATONIC_THREADS=1` and
//! `=4`, so the dispatch is exercised at width × mode combinations. On
//! hosts without a vector unit (`simd::lanes() == 1`) both modes resolve
//! to the scalar path and the comparison is trivially exact.

use splatonic::math::Vec3;
use splatonic::render::prelude::*;
use splatonic::render::{loss, KernelMode, LossConfig};
use splatonic::scene::{Camera, Gaussian, GaussianScene, Intrinsics};
use splatonic_math::{Pose, Quat};

const W: usize = 64;
const H: usize = 48;

/// Worker widths swept by every test (0 = auto).
const WIDTHS: [usize; 3] = [1, 4, 0];

fn scene() -> GaussianScene {
    let mut scene = GaussianScene::new();
    // Enough overlapping splats that every kernel sees full vector batches
    // plus a scalar tail (counts not divisible by the lane width).
    for i in 0..23u32 {
        let t = i as f64;
        scene.push(Gaussian::new(
            Vec3::new(
                0.35 * (t * 0.7).sin(),
                0.3 * (t * 1.1).cos(),
                1.6 + 0.12 * t,
            ),
            Vec3::new(
                0.15 + 0.02 * (t * 0.4).sin().abs(),
                0.2 + 0.015 * t.cos().abs(),
                0.18,
            ),
            Quat::from_axis_angle(Vec3::new(0.2, 1.0, 0.3 * t.sin()), 0.25 * t),
            0.35 + 0.55 * ((t * 0.9).sin() * 0.5 + 0.5),
            Vec3::new(
                (t * 0.3).sin() * 0.5 + 0.5,
                (t * 0.5).cos() * 0.5 + 0.5,
                0.6,
            ),
        ));
    }
    scene
}

fn camera() -> Camera {
    Camera::new(
        Intrinsics::with_fov(W, H, 1.2),
        Pose::new(
            Quat::from_axis_angle(Vec3::Y, 0.08).to_rotation_matrix(),
            Vec3::new(0.04, -0.03, 0.05),
        ),
    )
}

fn config(mode: KernelMode, threads: usize) -> RenderConfig {
    RenderConfig {
        kernels: mode,
        threads,
        ..RenderConfig::default()
    }
}

fn assert_forward_bitwise(a: &ForwardResult, b: &ForwardResult, label: &str) {
    assert_eq!(a.color.len(), b.color.len(), "{label}: pixel count");
    for (i, (ca, cb)) in a.color.iter().zip(&b.color).enumerate() {
        for k in 0..3 {
            assert_eq!(
                ca[k].to_bits(),
                cb[k].to_bits(),
                "{label}: color[{i}][{k}] {} vs {}",
                ca[k],
                cb[k]
            );
        }
    }
    for (i, (da, db)) in a.depth.iter().zip(&b.depth).enumerate() {
        assert_eq!(da.to_bits(), db.to_bits(), "{label}: depth[{i}]");
    }
    for (i, (ta, tb)) in a
        .final_transmittance
        .iter()
        .zip(&b.final_transmittance)
        .enumerate()
    {
        assert_eq!(ta.to_bits(), tb.to_bits(), "{label}: transmittance[{i}]");
    }
    assert_eq!(
        a.contributions.len(),
        b.contributions.len(),
        "{label}: contribution lists"
    );
    for (i, (la, lb)) in a.contributions.iter().zip(&b.contributions).enumerate() {
        assert_eq!(la.len(), lb.len(), "{label}: contribs[{i}] length");
        for (ea, eb) in la.iter().zip(lb) {
            assert_eq!(ea.gaussian, eb.gaussian, "{label}: contribs[{i}] id");
            assert_eq!(
                ea.alpha.to_bits(),
                eb.alpha.to_bits(),
                "{label}: contribs[{i}] alpha"
            );
            assert_eq!(
                ea.transmittance.to_bits(),
                eb.transmittance.to_bits(),
                "{label}: contribs[{i}] transmittance"
            );
        }
    }
}

fn pixel_sets() -> Vec<(&'static str, PixelSet)> {
    let sparse = PixelSet::from_tile_chooser(W, H, 16, |_, _, x0, y0, w, h| {
        Some(splatonic::render::pixelset::PixelCoord::new(
            (x0 + w / 2) as u16,
            (y0 + h / 2) as u16,
        ))
    });
    vec![("dense", PixelSet::dense(W, H)), ("sparse16", sparse)]
}

#[test]
fn forward_scalar_simd_bitwise_at_all_widths() {
    let scene = scene();
    let cam = camera();
    for (set_name, pixels) in pixel_sets() {
        for pipeline in [Pipeline::PixelBased, Pipeline::TileBased] {
            for threads in WIDTHS {
                let scalar = render_forward(
                    &scene,
                    &cam,
                    &pixels,
                    pipeline,
                    &config(KernelMode::Scalar, threads),
                );
                let simd = render_forward(
                    &scene,
                    &cam,
                    &pixels,
                    pipeline,
                    &config(KernelMode::Simd, threads),
                );
                assert_forward_bitwise(
                    &scalar,
                    &simd,
                    &format!("{pipeline:?}/{set_name}/threads={threads}"),
                );
                // Workload accounting must not depend on the kernel mode
                // either — check_bench.py compares these counters exactly.
                assert_eq!(
                    scalar.trace.forward, simd.trace.forward,
                    "{pipeline:?}/{set_name}/threads={threads}: forward trace"
                );
            }
        }
    }
}

#[test]
fn backward_scalar_simd_bitwise_at_all_widths() {
    let scene = scene();
    let cam = camera();
    let loss_cfg = LossConfig::default();
    let reference = {
        // A slightly perturbed render as the target frame, so loss
        // gradients are non-zero everywhere.
        let mut perturbed = scene.clone();
        perturbed.update_each(|_, g| {
            g.mean += Vec3::new(0.012, -0.009, 0.011);
            g.color += Vec3::new(-0.02, 0.03, 0.015);
        });
        let pixels = PixelSet::dense(W, H);
        let out = render_forward(
            &perturbed,
            &cam,
            &pixels,
            Pipeline::TileBased,
            &RenderConfig::default(),
        );
        let mut color = splatonic::math::Image::filled(W, H, Vec3::ZERO);
        let mut depth = splatonic::math::Image::filled(W, H, 0.0);
        for (i, p) in pixels.iter_all().enumerate() {
            color[(p.x as usize, p.y as usize)] = out.color[i];
            depth[(p.x as usize, p.y as usize)] = out.depth[i];
        }
        splatonic::scene::Frame::new(color, depth, 0)
    };
    for (set_name, pixels) in pixel_sets() {
        for pipeline in [Pipeline::PixelBased, Pipeline::TileBased] {
            for threads in WIDTHS {
                let run = |mode: KernelMode| {
                    let cfg = config(mode, threads);
                    let out = render_forward(&scene, &cam, &pixels, pipeline, &cfg);
                    let l = loss::evaluate_loss(&out, &reference, &pixels, &loss_cfg);
                    render_backward(&scene, &cam, &pixels, &out, &l.grads, pipeline, &cfg)
                };
                let (sg_a, pg_a, tr_a) = run(KernelMode::Scalar);
                let (sg_b, pg_b, tr_b) = run(KernelMode::Simd);
                let label = format!("{pipeline:?}/{set_name}/threads={threads}");
                assert_eq!(sg_a.len(), sg_b.len(), "{label}: grad count");
                for ((id_a, ga), (id_b, gb)) in sg_a.entries.iter().zip(&sg_b.entries) {
                    assert_eq!(id_a, id_b, "{label}: grad order");
                    for k in 0..3 {
                        assert_eq!(
                            ga.mean[k].to_bits(),
                            gb.mean[k].to_bits(),
                            "{label}: g{id_a} mean[{k}]"
                        );
                        assert_eq!(
                            ga.log_scale[k].to_bits(),
                            gb.log_scale[k].to_bits(),
                            "{label}: g{id_a} log_scale[{k}]"
                        );
                        assert_eq!(
                            ga.color[k].to_bits(),
                            gb.color[k].to_bits(),
                            "{label}: g{id_a} color[{k}]"
                        );
                    }
                    for k in 0..4 {
                        assert_eq!(
                            ga.rotation[k].to_bits(),
                            gb.rotation[k].to_bits(),
                            "{label}: g{id_a} rotation[{k}]"
                        );
                    }
                    assert_eq!(
                        ga.opacity_logit.to_bits(),
                        gb.opacity_logit.to_bits(),
                        "{label}: g{id_a} opacity_logit"
                    );
                }
                let (xa, xb) = (pg_a.xi.to_array(), pg_b.xi.to_array());
                for k in 0..6 {
                    assert_eq!(xa[k].to_bits(), xb[k].to_bits(), "{label}: pose xi[{k}]");
                }
                assert_eq!(tr_a.backward, tr_b.backward, "{label}: backward trace");
            }
        }
    }
}
