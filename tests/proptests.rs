//! Randomized property tests over the public API.
//!
//! These check the invariants DESIGN.md §7 calls out: compositing
//! monotonicity, α bounds, SE(3) round-trips, ATE rigid-invariance, pixel-
//! set structure, and the exp-LUT's approximation contract.
//!
//! The harness is hand-rolled on the suite's own deterministic PRNG
//! ([`Rng64`]) instead of an external property-testing crate, so the test
//! suite builds offline. Each property runs a fixed number of cases from a
//! fixed master seed; a failure message includes the case index, which
//! pins down the failing input exactly (case `i` uses seed `MASTER ^ i`).

use splatonic::math::{ExpLut, Pose, Rng64, Se3, Vec3};
use splatonic::render::prelude::*;
use splatonic::scene::{Camera, Gaussian, GaussianScene, Intrinsics};
use splatonic_math::Quat;

const CASES: usize = 48;

/// Runs `f` once per case with a per-case deterministic generator.
fn for_each_case(master_seed: u64, f: impl Fn(usize, &mut Rng64)) {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(master_seed ^ case as u64);
        f(case, &mut rng);
    }
}

fn small_vec3(rng: &mut Rng64) -> Vec3 {
    Vec3::new(
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
    )
}

fn arb_gaussian(rng: &mut Rng64) -> Gaussian {
    let offset = small_vec3(rng);
    let scale = Vec3::new(
        rng.gen_range(0.02..0.4),
        rng.gen_range(0.02..0.4),
        rng.gen_range(0.02..0.4),
    );
    let (qx, qy, qz) = (
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
    );
    let qw = rng.gen_range(0.1..1.0);
    let opacity = rng.gen_range(0.05..0.95);
    let color = Vec3::new(
        rng.gen_range(0.0..1.0),
        rng.gen_range(0.0..1.0),
        rng.gen_range(0.0..1.0),
    );
    let depth = rng.gen_range(1.2..4.0);
    Gaussian::new(
        Vec3::new(offset.x, offset.y, depth),
        scale,
        Quat::new(qw, qx, qy, qz),
        opacity,
        color,
    )
}

fn arb_scene(rng: &mut Rng64, min: usize, max: usize) -> GaussianScene {
    let n = rng.gen_range(min..max);
    (0..n).map(|_| arb_gaussian(rng)).collect()
}

fn arb_pose(rng: &mut Rng64) -> Pose {
    Se3::new(small_vec3(rng) * 3.0, small_vec3(rng)).exp()
}

fn camera() -> Camera {
    Camera::new(Intrinsics::with_fov(48, 36, 1.2), Pose::identity())
}

/// Rendering invariants: Γ ∈ [0,1] and decreasing along each pixel's
/// contribution list, α within (0, α_max], colors finite and bounded.
#[test]
fn forward_render_invariants() {
    for_each_case(0x0BAD_5EED, |case, rng| {
        let scene = arb_scene(rng, 1, 24);
        let cam = camera();
        let pixels = PixelSet::dense(48, 36);
        let cfg = RenderConfig::default();
        let out = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &cfg);
        for (i, contribs) in out.contributions.iter().enumerate() {
            let mut prev_t = 1.0f64;
            for c in contribs {
                assert!(
                    c.alpha > 0.0 && c.alpha <= cfg.alpha_max + 1e-12,
                    "case {case}: alpha {} out of range",
                    c.alpha
                );
                assert!(
                    c.transmittance <= prev_t + 1e-12,
                    "case {case}: Γ increased"
                );
                assert!(c.transmittance >= 0.0, "case {case}");
                prev_t = c.transmittance;
            }
            assert!(out.final_transmittance[i] >= 0.0, "case {case}");
            assert!(out.final_transmittance[i] <= 1.0 + 1e-12, "case {case}");
            assert!(out.color[i].is_finite(), "case {case}");
            // Composited color of [0,1] sources stays in [0,1] (+bg 0).
            assert!(out.color[i].max_component() <= 1.0 + 1e-9, "case {case}");
        }
    });
}

/// The two pipelines render identical images for arbitrary scenes.
#[test]
fn pipelines_agree() {
    for_each_case(0xA9EE_0001, |case, rng| {
        let scene = arb_scene(rng, 1, 16);
        let cam = camera();
        let pixels = PixelSet::dense(48, 36);
        let cfg = RenderConfig::default();
        let a = render_forward(&scene, &cam, &pixels, Pipeline::TileBased, &cfg);
        let b = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &cfg);
        for (ca, cb) in a.color.iter().zip(b.color.iter()) {
            assert!(
                (*ca - *cb).abs().max_component() < 1e-9,
                "case {case}: pipelines diverge"
            );
        }
    });
}

/// SE(3) exp/log round-trip over the tangent space.
#[test]
fn se3_exp_log_round_trip() {
    for_each_case(0x5E30_0C0F, |case, rng| {
        let rho = Vec3::new(
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
        );
        let phi = small_vec3(rng);
        let xi = Se3::new(rho, phi);
        let back = xi.exp().log();
        assert!((back.rho - xi.rho).norm() < 1e-8, "case {case}");
        assert!((back.phi - xi.phi).norm() < 1e-8, "case {case}");
    });
}

/// ATE is invariant under a global rigid transform of the estimate.
#[test]
fn ate_rigid_invariance() {
    for_each_case(0xA7E0_0123, |case, rng| {
        let jitter = rng.gen_range(0.0..1.0) * 1e-3;
        let gt: Vec<Pose> = (0..12)
            .map(|i| {
                let t = i as f64 * 0.2 + jitter;
                Se3::new(
                    Vec3::new(t.cos(), 0.05 * t, t.sin()),
                    Vec3::new(0.0, 0.1 * t, 0.0),
                )
                .exp()
            })
            .collect();
        let rig = Se3::new(
            small_vec3(rng),
            Vec3::new(
                rng.gen_range(-0.8..0.8),
                rng.gen_range(-0.8..0.8),
                rng.gen_range(-0.8..0.8),
            ),
        )
        .exp();
        let est: Vec<Pose> = gt.iter().map(|p| p.compose(&rig)).collect();
        let ate = splatonic::slam::metrics::ate_rmse_cm(&est, &gt);
        assert!(ate < 1e-3, "case {case}: ATE {ate}");
    });
}

/// The exp LUT approximates exp(-x) within its documented error bound and
/// is monotone non-increasing.
#[test]
fn explut_contract() {
    for_each_case(0xE4B_1007, |case, rng| {
        let lut = ExpLut::default();
        let x = rng.gen_range(0.0..8.0f64);
        let y = rng.gen_range(0.0..8.0f64);
        assert!(
            (lut.eval(x) - (-x).exp()).abs() < 2.5e-3,
            "case {case}: LUT error at {x}"
        );
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        assert!(lut.eval(lo) >= lut.eval(hi) - 1e-12, "case {case}");
    });
}

/// Pixel sets built from a tile chooser keep one in-tile sample per tile
/// and report the exact sampling rate.
#[test]
fn pixelset_tile_structure() {
    for_each_case(0x7115_0CAF, |case, rng| {
        let tile = rng.gen_range(2usize..32);
        let w = rng.gen_range(16usize..120);
        let h = rng.gen_range(16usize..100);
        let set = PixelSet::from_tile_chooser(w, h, tile, |_, _, x0, y0, tw, th| {
            Some(splatonic::render::pixelset::PixelCoord::new(
                (x0 + (tw - 1) / 2) as u16,
                (y0 + (th - 1) / 2) as u16,
            ))
        });
        let tiles = w.div_ceil(tile) * h.div_ceil(tile);
        assert_eq!(set.len(), tiles, "case {case}");
        for p in set.samples() {
            assert!((p.x as usize) < w && (p.y as usize) < h, "case {case}");
        }
        // Every sample sits in a distinct tile.
        let mut seen = std::collections::HashSet::new();
        for p in set.samples() {
            let key = (p.x as usize / tile, p.y as usize / tile);
            assert!(seen.insert(key), "case {case}: two samples in one tile");
        }
    });
}

/// Covariances of arbitrary Gaussians are symmetric positive semi-definite
/// with the expected determinant.
#[test]
fn covariance_is_spd() {
    for_each_case(0xC0F4_0D57, |case, rng| {
        let g = arb_gaussian(rng);
        let c = g.covariance();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (c.at(i, j) - c.at(j, i)).abs() < 1e-10,
                    "case {case}: asymmetric covariance"
                );
            }
        }
        let s = g.scale();
        let expected_det = (s.x * s.y * s.z).powi(2);
        assert!(c.det() > 0.0, "case {case}");
        assert!(
            (c.det() - expected_det).abs() / expected_det < 1e-6,
            "case {case}: det {} vs {}",
            c.det(),
            expected_det
        );
    });
}

/// The screen-space bin index is conservative with respect to rendering:
/// every Gaussian that contributes non-zero α to a pixel in the exhaustive
/// (binning-off) path appears in that pixel's bin candidate list, for
/// arbitrary sparse pixel sets (tile-structured or not) and bin sizes.
#[test]
fn bin_index_is_conservative() {
    use splatonic::render::kernel::project_scene;
    use splatonic::render::pixelset::PixelCoord;
    use splatonic::render::BinIndex;
    for_each_case(0xB1A5_ED00, |case, rng| {
        let scene = arb_scene(rng, 4, 40);
        let cam = camera();
        let cfg = RenderConfig {
            binning: false,
            cache: false,
            ..RenderConfig::default()
        };
        // A mixed sparse set: either a one-per-tile structure or scattered
        // pixels, plus one extra pixel.
        let mut pixels = if rng.gen_range(0.0..1.0) < 0.5 {
            let tile = [4usize, 6, 8][rng.gen_range(0usize..3)];
            PixelSet::from_tile_chooser(48, 36, tile, |tx, ty, x0, y0, tw, th| {
                Some(PixelCoord::new(
                    (x0 + (tx * 7 + ty) % tw) as u16,
                    (y0 + (ty * 5 + tx) % th) as u16,
                ))
            })
        } else {
            let pts: Vec<PixelCoord> = (0..rng.gen_range(4usize..40))
                .map(|_| {
                    PixelCoord::new(
                        rng.gen_range(0usize..48) as u16,
                        rng.gen_range(0usize..36) as u16,
                    )
                })
                .collect();
            PixelSet::from_pixels(48, 36, pts)
        };
        pixels.add_extra([PixelCoord::new(
            rng.gen_range(0usize..48) as u16,
            rng.gen_range(0usize..36) as u16,
        )]);
        let out = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &cfg);
        let (projected, _) = project_scene(&scene, &cam, &cfg);
        let bin_size = [4usize, 8, 16, 32][rng.gen_range(0usize..4)];
        let index = BinIndex::build(&projected, &pixels, bin_size);
        for (i, p) in pixels.iter_all().enumerate() {
            for c in &out.contributions[i] {
                assert!(c.alpha > 0.0);
                let pi = projected
                    .iter()
                    .position(|pg| pg.id == c.gaussian)
                    .expect("contributing gaussian must be projected")
                    as u32;
                assert!(
                    index.candidates(p).contains(&pi),
                    "case {case}: gaussian {} contributes to pixel {p:?} but is \
                     missing from its bin (bin_size {bin_size})",
                    c.gaussian
                );
            }
        }
    });
}

/// The cross-iteration projection cache never changes rendered output:
/// repeated renders (cache hits) and pose-stepped renders (invalidations)
/// are bit-identical to cache-off renders of the same inputs.
#[test]
fn projection_cache_is_transparent() {
    for_each_case(0xCAC4_E5EED, |case, rng| {
        let scene = arb_scene(rng, 4, 32);
        let cam = camera();
        let on = RenderConfig::default();
        let off = RenderConfig {
            cache: false,
            ..RenderConfig::default()
        };
        let pixels = PixelSet::dense(48, 36);
        let a1 = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &on);
        let a2 = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &on);
        let b = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &off);
        assert_eq!(a1.color, b.color, "case {case}: first render");
        assert_eq!(a2.color, b.color, "case {case}: repeat (cached) render");
        assert_eq!(a1.trace, b.trace, "case {case}: trace");
        assert_eq!(a2.trace, b.trace, "case {case}: cached trace");
    });
}

/// The grouped tile sort (one shared depth sort per tile group, per-tile
/// lists recovered by masking, DESIGN.md §16) is schedule-only: for
/// arbitrary scenes, poses, and group sizes it must reproduce the per-tile
/// oracle's forward output and backward gradients bit-for-bit. Only the
/// sorting-schedule counters may differ.
#[test]
fn grouped_sort_matches_per_tile_oracle() {
    use splatonic::render::LossGrad;
    for_each_case(0x6C0D_5027, |case, rng| {
        let scene = arb_scene(rng, 8, 48);
        let cam = Camera::new(Intrinsics::with_fov(48, 36, 1.2), arb_pose(rng));
        let pixels = PixelSet::dense(48, 36);
        let lg: Vec<LossGrad> = (0..pixels.len())
            .map(|_| LossGrad {
                d_color: small_vec3(rng),
                d_depth: rng.gen_range(-0.5..0.5),
            })
            .collect();
        let group_size = [2usize, 3, 4][rng.gen_range(0usize..3)];
        let run = |tile_grouping: bool| {
            splatonic::render::projcache::clear();
            splatonic::render::tilesort::clear();
            let cfg = RenderConfig {
                tile_grouping,
                group_size,
                sort_cache: false,
                ..RenderConfig::default()
            };
            let f = render_forward(&scene, &cam, &pixels, Pipeline::TileBased, &cfg);
            let b = render_backward(&scene, &cam, &pixels, &f, &lg, Pipeline::TileBased, &cfg);
            (f, b)
        };
        let (fg, bg) = run(true);
        let (fo, bo) = run(false);
        assert_eq!(fg.color, fo.color, "case {case}: forward color");
        assert_eq!(fg.depth, fo.depth, "case {case}: forward depth");
        assert_eq!(
            fg.contributions, fo.contributions,
            "case {case}: contribution lists"
        );
        assert_eq!(bg.0, bo.0, "case {case}: scene grads (group {group_size})");
        assert_eq!(bg.1, bo.1, "case {case}: pose grad");
        // The grouped schedule never sorts more than the per-tile oracle
        // (shared group sorts subsume the per-tile ones).
        assert!(
            fg.trace.forward.sort_elems <= fo.trace.forward.sort_elems,
            "case {case}: grouped sorted {} elems, oracle {}",
            fg.trace.forward.sort_elems,
            fo.trace.forward.sort_elems
        );
    });
    splatonic::render::projcache::clear();
    splatonic::render::tilesort::clear();
}

/// The frame-coherent sort cache never changes rendered output: repeated
/// renders (exact hits), small pose steps (coherent re-merges), and scene
/// mutations (revision invalidations) are all bit-identical to cache-off
/// renders of the same inputs, forward and backward.
#[test]
fn sort_cache_is_transparent() {
    use splatonic::render::LossGrad;
    for_each_case(0x50CA_C4ED, |case, rng| {
        let mut scene = arb_scene(rng, 8, 40);
        let base = arb_pose(rng);
        // A tracking-shaped walk: repeat pose, two small steps, then a
        // scene mutation followed by one more render at the last pose.
        let step = |p: &Pose, rng: &mut Rng64| {
            p.compose(&Se3::new(small_vec3(rng) * 0.01, small_vec3(rng) * 0.004).exp())
        };
        let mut poses = vec![base, base];
        let s1 = step(&base, rng);
        poses.push(s1);
        poses.push(step(&s1, rng));
        let pixels = PixelSet::dense(48, 36);
        let lg: Vec<LossGrad> = (0..pixels.len())
            .map(|_| LossGrad {
                d_color: small_vec3(rng),
                d_depth: rng.gen_range(-0.5..0.5),
            })
            .collect();
        let mutate = |scene: &mut GaussianScene, rng: &mut Rng64| {
            let i = rng.gen_range(0usize..scene.len());
            let nudge = small_vec3(rng) * 0.05;
            scene.update(i, |g| g.mean += nudge);
        };
        let walk = |scene: &mut GaussianScene, rng: &mut Rng64, sort_cache: bool| {
            splatonic::render::projcache::clear();
            splatonic::render::tilesort::clear();
            let cfg = RenderConfig {
                cache: false,
                sort_cache,
                ..RenderConfig::default()
            };
            let mut outs = Vec::new();
            for cam_pose in &poses {
                let cam = Camera::new(Intrinsics::with_fov(48, 36, 1.2), *cam_pose);
                let f = render_forward(scene, &cam, &pixels, Pipeline::TileBased, &cfg);
                let b = render_backward(scene, &cam, &pixels, &f, &lg, Pipeline::TileBased, &cfg);
                outs.push((f, b));
            }
            mutate(scene, rng);
            let cam = Camera::new(Intrinsics::with_fov(48, 36, 1.2), *poses.last().unwrap());
            let f = render_forward(scene, &cam, &pixels, Pipeline::TileBased, &cfg);
            let b = render_backward(scene, &cam, &pixels, &f, &lg, Pipeline::TileBased, &cfg);
            outs.push((f, b));
            outs
        };
        // Both walks must see the same scene trajectory: clone the scene so
        // each applies the identical mutation from an identical state.
        let mut scene_cold = GaussianScene::from_vec(scene.to_vec());
        let mut rng_cold = Rng64::seed_from_u64(0x50CA_C4ED ^ case as u64 ^ 0xFFFF);
        let mut rng_cached = Rng64::seed_from_u64(0x50CA_C4ED ^ case as u64 ^ 0xFFFF);
        let cached = walk(&mut scene, &mut rng_cached, true);
        let stats = splatonic::render::tilesort::stats();
        assert!(stats.hits >= 1, "case {case}: repeats/backward must hit");
        assert!(stats.merges >= 1, "case {case}: pose steps must merge");
        let cold = walk(&mut scene_cold, &mut rng_cold, false);
        for (i, ((fc, bc), (fx, bx))) in cached.iter().zip(&cold).enumerate() {
            assert_eq!(fc.color, fx.color, "case {case}: render {i} color");
            assert_eq!(
                fc.contributions, fx.contributions,
                "case {case}: render {i} contributions"
            );
            assert_eq!(fc.trace, fx.trace, "case {case}: render {i} trace");
            assert_eq!(bc.0, bx.0, "case {case}: render {i} scene grads");
            assert_eq!(bc.1, bx.1, "case {case}: render {i} pose grad");
            assert_eq!(bc.2, bx.2, "case {case}: render {i} bwd trace");
        }
    });
    splatonic::render::projcache::clear();
    splatonic::render::tilesort::clear();
}

/// Snapshot wire-format round trip: encode → decode → re-encode is the
/// byte-identity for arbitrary run state, including non-finite floats
/// (NaN payloads, ±∞, −0.0 travel via `to_bits`, DESIGN.md §12) — and any
/// single corrupted payload byte is rejected by the checksum.
#[test]
fn snapshot_round_trip_is_byte_identity() {
    use splatonic_math::stats::Summary;
    use splatonic_render::RenderTrace;
    use splatonic_slam::snapshot::{Snapshot, SnapshotError, HEADER_LEN};

    for_each_case(0x5A47_500C, |case, rng| {
        let weird = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1.5e-300];
        let f = |rng: &mut Rng64| {
            if rng.gen_range(0.0..1.0) < 0.15 {
                weird[rng.gen_range(0usize..weird.len())]
            } else {
                rng.gen_range(-1e6..1e6)
            }
        };
        let n_poses = rng.gen_range(1usize..6);
        let mut tracking_trace = RenderTrace::new();
        tracking_trace.forward.pixels_shaded = rng.gen_range(0u64..1 << 40);
        tracking_trace.forward.pixel_list_len =
            Summary::from_parts(rng.gen_range(0usize..99), f(rng), f(rng), f(rng), f(rng));
        tracking_trace.backward.atomic_adds = rng.gen_range(0u64..1 << 40);
        tracking_trace.pixel_lists = (0..rng.gen_range(0usize..20))
            .map(|_| rng.gen_range(0u64..1 << 32) as u32)
            .collect();
        tracking_trace.proj_candidates = (0..rng.gen_range(0usize..20))
            .map(|_| rng.gen_range(0u64..1 << 32) as u32)
            .collect();
        let snapshot = Snapshot {
            seed: rng.gen_range(0u64..u64::MAX),
            config_fingerprint: rng.gen_range(0u64..u64::MAX),
            next_frame: n_poses,
            scene_revision: rng.gen_range(0u64..1 << 50),
            gaussians: (0..rng.gen_range(0usize..12))
                .map(|_| arb_gaussian(rng))
                .collect(),
            est_poses: (0..n_poses).map(|_| arb_pose(rng)).collect(),
            keyframes: (0..rng.gen_range(0usize..4))
                .map(|_| (rng.gen_range(0usize..n_poses), arb_pose(rng)))
                .collect(),
            adam_t: rng.gen_range(0u64..1 << 50),
            adam_moments: (0..rng.gen_range(0usize..30))
                .map(|_| (f(rng), f(rng)))
                .collect(),
            tracking_iters: rng.gen_range(0usize..1 << 20),
            mapping_iters: rng.gen_range(0usize..1 << 20),
            mapping_invocations: rng.gen_range(0usize..1 << 20),
            tracking_trace,
            mapping_trace: RenderTrace::new(),
        };
        let bytes = snapshot.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        assert_eq!(
            decoded.to_bytes(),
            bytes,
            "case {case}: re-encode must be byte-identical"
        );
        // Any single payload-byte corruption trips the checksum.
        if bytes.len() > HEADER_LEN {
            let mut corrupt = bytes.clone();
            let i = HEADER_LEN + rng.gen_range(0usize..bytes.len() - HEADER_LEN);
            corrupt[i] ^= 1 + rng.gen_range(0u64..255) as u8;
            assert!(
                matches!(
                    Snapshot::from_bytes(&corrupt),
                    Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "case {case}: flipped payload byte {i} must be rejected"
            );
        }
    });
}

/// The SoA scene store is a lossless transpose of the AoS `Gaussian` list:
/// scattering any list into `GaussianScene` columns and gathering it back
/// must reproduce every field bit-for-bit, in order (DESIGN.md §13). The
/// SIMD kernels rely on this to treat either layout as the same scene.
#[test]
fn scene_soa_aos_round_trip_is_lossless() {
    for_each_case(0x50a0_a05a, |case, rng| {
        let scene = arb_scene(rng, 1, 40);
        let aos = scene.to_vec();
        assert_eq!(aos.len(), scene.len(), "case {case}: length");
        let rebuilt = GaussianScene::from_vec(aos);
        assert_eq!(rebuilt.len(), scene.len(), "case {case}: rebuilt length");
        for (i, (a, b)) in scene.iter().zip(rebuilt.iter()).enumerate() {
            let pairs = [
                (a.mean.x, b.mean.x),
                (a.mean.y, b.mean.y),
                (a.mean.z, b.mean.z),
                (a.log_scale.x, b.log_scale.x),
                (a.log_scale.y, b.log_scale.y),
                (a.log_scale.z, b.log_scale.z),
                (a.opacity_logit, b.opacity_logit),
                (a.color.x, b.color.x),
                (a.color.y, b.color.y),
                (a.color.z, b.color.z),
            ];
            for (k, (fa, fb)) in pairs.into_iter().enumerate() {
                assert_eq!(
                    fa.to_bits(),
                    fb.to_bits(),
                    "case {case}: gaussian {i} field {k}"
                );
            }
            let (qa, qb) = (a.rotation.to_array(), b.rotation.to_array());
            for k in 0..4 {
                assert_eq!(
                    qa[k].to_bits(),
                    qb[k].to_bits(),
                    "case {case}: gaussian {i} rotation[{k}]"
                );
            }
        }
    });
}
