//! Property-based tests over the public API (proptest).
//!
//! These check the invariants DESIGN.md §7 calls out: compositing
//! monotonicity, α bounds, SE(3) round-trips, ATE rigid-invariance, pixel-
//! set structure, and the exp-LUT's approximation contract.

use proptest::prelude::*;
use splatonic::math::{ExpLut, Pose, Se3, Vec3};
use splatonic::render::prelude::*;
use splatonic::scene::{Camera, Gaussian, GaussianScene, Intrinsics};
use splatonic_math::Quat;

fn small_vec3() -> impl Strategy<Value = Vec3> {
    (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_gaussian() -> impl Strategy<Value = Gaussian> {
    (
        small_vec3(),
        (0.02f64..0.4, 0.02f64..0.4, 0.02f64..0.4),
        (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0, 0.1f64..1.0),
        0.05f64..0.95,
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        1.2f64..4.0,
    )
        .prop_map(|(offset, (sx, sy, sz), (qx, qy, qz, qw), opacity, (r, g, b), depth)| {
            Gaussian::new(
                Vec3::new(offset.x, offset.y, depth),
                Vec3::new(sx, sy, sz),
                Quat::new(qw, qx, qy, qz),
                opacity,
                Vec3::new(r, g, b),
            )
        })
}

fn camera() -> Camera {
    Camera::new(Intrinsics::with_fov(48, 36, 1.2), Pose::identity())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rendering invariants: Γ ∈ [0,1] and decreasing along each pixel's
    /// contribution list, α within (0, α_max], colors finite and bounded.
    #[test]
    fn forward_render_invariants(gaussians in prop::collection::vec(arb_gaussian(), 1..24)) {
        let scene: GaussianScene = gaussians.into_iter().collect();
        let cam = camera();
        let pixels = PixelSet::dense(48, 36);
        let cfg = RenderConfig::default();
        let out = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &cfg);
        for (i, contribs) in out.contributions.iter().enumerate() {
            let mut prev_t = 1.0f64;
            for c in contribs {
                prop_assert!(c.alpha > 0.0 && c.alpha <= cfg.alpha_max + 1e-12);
                prop_assert!(c.transmittance <= prev_t + 1e-12);
                prop_assert!(c.transmittance >= 0.0);
                prev_t = c.transmittance;
            }
            prop_assert!(out.final_transmittance[i] >= 0.0);
            prop_assert!(out.final_transmittance[i] <= 1.0 + 1e-12);
            prop_assert!(out.color[i].is_finite());
            // Composited color of [0,1] sources stays in [0,1] (+bg 0).
            prop_assert!(out.color[i].max_component() <= 1.0 + 1e-9);
        }
    }

    /// The two pipelines render identical images for arbitrary scenes.
    #[test]
    fn pipelines_agree(gaussians in prop::collection::vec(arb_gaussian(), 1..16)) {
        let scene: GaussianScene = gaussians.into_iter().collect();
        let cam = camera();
        let pixels = PixelSet::dense(48, 36);
        let cfg = RenderConfig::default();
        let a = render_forward(&scene, &cam, &pixels, Pipeline::TileBased, &cfg);
        let b = render_forward(&scene, &cam, &pixels, Pipeline::PixelBased, &cfg);
        for (ca, cb) in a.color.iter().zip(b.color.iter()) {
            prop_assert!((*ca - *cb).abs().max_component() < 1e-9);
        }
    }

    /// SE(3) exp/log round-trip over the tangent space.
    #[test]
    fn se3_exp_log_round_trip(
        rx in -1.0f64..1.0, ry in -1.0f64..1.0, rz in -1.0f64..1.0,
        px in -2.0f64..2.0, py in -2.0f64..2.0, pz in -2.0f64..2.0,
    ) {
        let xi = Se3::new(Vec3::new(px, py, pz), Vec3::new(rx, ry, rz));
        let back = xi.exp().log();
        prop_assert!((back.rho - xi.rho).norm() < 1e-8);
        prop_assert!((back.phi - xi.phi).norm() < 1e-8);
    }

    /// ATE is invariant under a global rigid transform of the estimate.
    #[test]
    fn ate_rigid_invariance(
        seedling in 0u64..1000,
        tx in -1.0f64..1.0, ty in -1.0f64..1.0, tz in -1.0f64..1.0,
        wx in -0.8f64..0.8, wy in -0.8f64..0.8, wz in -0.8f64..0.8,
    ) {
        let gt: Vec<Pose> = (0..12)
            .map(|i| {
                let t = i as f64 * 0.2 + seedling as f64 * 1e-3;
                Se3::new(Vec3::new(t.cos(), 0.05 * t, t.sin()), Vec3::new(0.0, 0.1 * t, 0.0)).exp()
            })
            .collect();
        let rig = Se3::new(Vec3::new(tx, ty, tz), Vec3::new(wx, wy, wz)).exp();
        let est: Vec<Pose> = gt.iter().map(|p| p.compose(&rig)).collect();
        let ate = splatonic::slam::metrics::ate_rmse_cm(&est, &gt);
        prop_assert!(ate < 1e-3, "ATE {ate}");
    }

    /// The exp LUT approximates exp(-x) within its documented error bound
    /// and is monotone non-increasing.
    #[test]
    fn explut_contract(x in 0.0f64..8.0, y in 0.0f64..8.0) {
        let lut = ExpLut::default();
        prop_assert!((lut.eval(x) - (-x).exp()).abs() < 2.5e-3);
        if x <= y {
            prop_assert!(lut.eval(x) >= lut.eval(y) - 1e-12);
        }
    }

    /// Pixel sets built from a tile chooser keep one in-tile sample per
    /// tile and report the exact sampling rate.
    #[test]
    fn pixelset_tile_structure(tile in 2usize..32, w in 16usize..120, h in 16usize..100) {
        let set = PixelSet::from_tile_chooser(w, h, tile, |_, _, x0, y0, tw, th| {
            Some(splatonic::render::pixelset::PixelCoord::new(
                (x0 + (tw - 1) / 2) as u16,
                (y0 + (th - 1) / 2) as u16,
            ))
        });
        let tiles = w.div_ceil(tile) * h.div_ceil(tile);
        prop_assert_eq!(set.len(), tiles);
        for p in set.samples() {
            prop_assert!((p.x as usize) < w && (p.y as usize) < h);
        }
        // Every sample sits in a distinct tile.
        let mut seen = std::collections::HashSet::new();
        for p in set.samples() {
            let key = (p.x as usize / tile, p.y as usize / tile);
            prop_assert!(seen.insert(key), "two samples in one tile");
        }
    }

    /// Covariances of arbitrary Gaussians are symmetric positive
    /// semi-definite with the expected determinant.
    #[test]
    fn covariance_is_spd(g in arb_gaussian()) {
        let c = g.covariance();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((c.at(i, j) - c.at(j, i)).abs() < 1e-10);
            }
        }
        let s = g.scale();
        let expected_det = (s.x * s.y * s.z).powi(2);
        prop_assert!(c.det() > 0.0);
        prop_assert!((c.det() - expected_det).abs() / expected_det < 1e-6);
    }
}
