//! Umbrella crate for integration tests and examples.
pub use splatonic;
