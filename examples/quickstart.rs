//! Quickstart: generate a synthetic RGB-D sequence, run sparse 3DGS-SLAM
//! on it, and report tracking/reconstruction quality.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use splatonic::prelude::*;

fn main() {
    // A small Replica-like sequence: a procedural room observed along a
    // smooth trajectory (stands in for the Replica dataset).
    let dataset = Dataset::replica_like("quickstart-room", 7, DatasetConfig::small());
    println!(
        "dataset: {} frames at {}x{}, {} ground-truth Gaussians",
        dataset.len(),
        dataset.intrinsics.width,
        dataset.intrinsics.height,
        dataset.world.scene.len()
    );

    // The paper's configuration: random one-per-16x16-tile tracking
    // sampling, combined mapping sampling at w_m = 4, pixel-based rendering.
    let config = SlamConfig::splatonic(AlgorithmConfig::default());
    let mut system = SlamSystem::new(config, dataset.intrinsics);
    let start = std::time::Instant::now();
    let result = system.run(&dataset);
    println!(
        "SLAM finished in {:.1}s: ATE {:.2} cm, PSNR {:.2} dB, {} Gaussians in the map",
        start.elapsed().as_secs_f64(),
        result.ate_cm,
        result.psnr_db,
        result.scene_size
    );
    println!(
        "tracking rendered {} pixels across {} iterations; mapping {} pixels across {}",
        result.tracking_trace.forward.pixels_shaded,
        result.tracking_iters,
        result.mapping_trace.forward.pixels_shaded,
        result.mapping_iters
    );
}
