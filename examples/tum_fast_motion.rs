//! TUM-like fast-motion evaluation: compare tracking sampling strategies
//! under fast camera motion (paper Fig. 10 / Fig. 18 territory).
//!
//! ```sh
//! cargo run --release --example tum_fast_motion
//! ```

use splatonic::prelude::*;

fn main() {
    let dataset = Dataset::tum_like(
        "fr1/desk",
        201,
        DatasetConfig {
            width: 128,
            height: 96,
            frames: 24,
            spacing: 0.2,
            fov: 1.25,
            furniture: 5,
            depth_dropout_coverage: 0.9,
        },
    );
    println!(
        "TUM-like sequence: {} frames, mean camera step {:.1} mm/frame\n",
        dataset.len(),
        mean_step_mm(&dataset)
    );

    let algo = AlgorithmConfig::default();
    let strategies: [(&str, SamplingStrategy); 4] = [
        (
            "Random 16x16 (paper)",
            SamplingStrategy::RandomPerTile { tile: 16 },
        ),
        ("Harris 16x16", SamplingStrategy::HarrisPerTile { tile: 16 }),
        ("Low-Res. 16x", SamplingStrategy::LowRes { factor: 16 }),
        (
            "Loss-guided (GauSPU)",
            SamplingStrategy::LossGuidedTiles { tile: 16 },
        ),
    ];
    println!("{:<24} {:>9} {:>10}", "strategy", "ATE (cm)", "PSNR (dB)");
    for (name, strategy) in strategies {
        let mut config = SlamConfig::splatonic(algo);
        config.tracking_sampling = strategy;
        let mut system = SlamSystem::new(config, dataset.intrinsics);
        let r = system.run(&dataset);
        println!("{:<24} {:>9.2} {:>10.2}", name, r.ate_cm, r.psnr_db);
    }
}

fn mean_step_mm(dataset: &Dataset) -> f64 {
    let mut total = 0.0;
    for w in dataset.gt_poses.windows(2) {
        total += (w[0].camera_center() - w[1].camera_center()).norm();
    }
    total / (dataset.len() - 1).max(1) as f64 * 1000.0
}
