//! Accelerator exploration: price one sparse tracking iteration across all
//! hardware targets, then sweep the SPLATONIC configuration space
//! (projection units × render units, paper Fig. 27 style).
//!
//! ```sh
//! cargo run --release --example accelerator_sweep
//! ```

use splatonic::accel::{DramModel, SplatonicAccel, SplatonicConfig};
use splatonic::harness::{measure_tracking_iteration, TrackingScenario};
use splatonic::prelude::*;

fn main() {
    let dataset = Dataset::replica_like("room0", 101, DatasetConfig::small());
    let scenario = TrackingScenario::prepare(&dataset, dataset.len() / 2);
    let sampling = SamplingStrategy::RandomPerTile { tile: 16 };
    let tile_m = measure_tracking_iteration(&scenario, Pipeline::TileBased, sampling, 3);
    let pixel_m = measure_tracking_iteration(&scenario, Pipeline::PixelBased, sampling, 3);

    println!("one sparse tracking iteration (one pixel per 16x16 tile):\n");
    println!("{:<18} {:>12} {:>12}", "target", "latency", "energy");
    for target in HardwareTarget::all() {
        let m = match target.expected_pipeline() {
            Pipeline::TileBased => &tile_m,
            Pipeline::PixelBased => &pixel_m,
        };
        let c = target.price(m);
        println!(
            "{:<18} {:>10.1} us {:>10.2} uJ",
            target.name(),
            c.seconds * 1e6,
            c.joules * 1e6
        );
    }

    println!("\nSPLATONIC configuration sweep (normalized to 8 projection / 4 render units):");
    let price = |proj: usize, render: usize| -> f64 {
        SplatonicAccel {
            config: SplatonicConfig::paper().with_units(proj, render),
            dram: DramModel::lpddr3_1600_x4(),
        }
        .price(&pixel_m.workload)
        .total_seconds()
    };
    let base = price(8, 4);
    println!("{:<8} {:>6} {:>6} {:>6}", "", "2r", "4r", "8r");
    for proj in [2usize, 4, 8, 16] {
        let row: Vec<String> = [2usize, 4, 8]
            .iter()
            .map(|&r| format!("{:.2}", base / price(proj, r)))
            .collect();
        println!(
            "{:<8} {:>6} {:>6} {:>6}",
            format!("{proj}p"),
            row[0],
            row[1],
            row[2]
        );
    }
}
