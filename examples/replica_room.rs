//! Replica-like evaluation: run the dense baseline, sparse sampling on the
//! original pipeline (ORG.+S), and the full SPLATONIC configuration on the
//! same sequence, comparing accuracy and rendered-pixel budgets.
//!
//! ```sh
//! cargo run --release --example replica_room
//! ```

use splatonic::prelude::*;

fn main() {
    let dataset = Dataset::replica_like(
        "room0",
        101,
        DatasetConfig {
            width: 128,
            height: 96,
            frames: 24,
            spacing: 0.2,
            fov: 1.25,
            furniture: 4,
            depth_dropout_coverage: 0.9,
        },
    );
    println!(
        "sequence room0: {} frames, {} GT Gaussians\n",
        dataset.len(),
        dataset.world.scene.len()
    );

    let algo = AlgorithmConfig::default();
    let variants: [(&str, SlamConfig); 3] = [
        ("dense baseline", SlamConfig::dense_baseline(algo)),
        (
            "ORG.+S (sparse, tile pipeline)",
            SlamConfig::original_plus_sampling(algo),
        ),
        (
            "SPLATONIC (sparse, pixel pipeline)",
            SlamConfig::splatonic(algo),
        ),
    ];
    println!(
        "{:<36} {:>9} {:>10} {:>14} {:>9}",
        "variant", "ATE (cm)", "PSNR (dB)", "pixels/track-it", "time"
    );
    for (name, config) in variants {
        let mut system = SlamSystem::new(config, dataset.intrinsics);
        let start = std::time::Instant::now();
        let r = system.run(&dataset);
        let px_per_iter =
            r.tracking_trace.forward.pixels_shaded as f64 / r.tracking_iters.max(1) as f64;
        println!(
            "{:<36} {:>9.2} {:>10.2} {:>14.0} {:>8.1}s",
            name,
            r.ate_cm,
            r.psnr_db,
            px_per_iter,
            start.elapsed().as_secs_f64()
        );
    }
    println!(
        "\nSparse tracking renders ~{}x fewer pixels per iteration at comparable accuracy \
         (paper Sec. VII-A).",
        16 * 16
    );
}
